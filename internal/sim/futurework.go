package sim

// futurework.go hosts the experiments for the paper's Section 5 future-work
// directions, implemented in packages coop and fiverule: cooperative
// caching across an ad hoc neighborhood, and economic pruning of DYNSimple's
// reference metadata.

import (
	"mediacache/internal/coop"
	"mediacache/internal/core"
	"mediacache/internal/fiverule"
	"mediacache/internal/media"
	"mediacache/internal/policy/dynsimple"
	"mediacache/internal/vtime"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

// CoopDeviceCounts is the neighborhood-size sweep of the cooperative
// experiment.
var CoopDeviceCounts = []int{2, 4, 8}

// Coop compares greedy (uncoordinated) caching against the dedup
// cooperative placement rule across neighborhood sizes: the global metric
// is the fraction of references serviced without the base station
// (Section 5's optimization criterion). Each device runs DYNSimple(K=2)
// with a 2% cache.
func Coop(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		return nil, err
	}
	const ratio = 0.02
	fig := &Figure{
		ID:     "coop",
		Title:  "Cooperative vs greedy caching: references serviced without the base station",
		XLabel: "Devices in radio range",
		YLabel: "Cooperative hit rate (%)",
	}
	build := func(n, maxCopies int) (*coop.Network, error) {
		net := coop.NewNetwork(coop.Config{MaxCopies: maxCopies})
		for i := 0; i < n; i++ {
			p, err := dynsimple.New(repo.N(), dynsimple.DefaultK)
			if err != nil {
				return nil, err
			}
			gen, err := workload.NewGenerator(dist, opt.Seed+uint64(i))
			if err != nil {
				return nil, err
			}
			if _, err := net.AddDevice(repo, repo.CacheSizeForRatio(ratio), p, gen); err != nil {
				return nil, err
			}
		}
		return net, nil
	}
	for _, mode := range []struct {
		label     string
		maxCopies int
	}{
		{"greedy", 0},
		{"cooperative (dedup)", 1},
	} {
		s := Series{Label: mode.label}
		for _, n := range CoopDeviceCounts {
			net, err := build(n, mode.maxCopies)
			if err != nil {
				return nil, err
			}
			rounds := opt.Requests / n
			if rounds == 0 {
				rounds = 1
			}
			if err := net.Run(rounds); err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, net.Stats().CooperativeHitRate())
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// FiveRuleRetentions is the retention-window sweep (in ticks) of the
// metadata-pruning experiment.
var FiveRuleRetentions = []vtime.Duration{50, 200, 1000, 5000}

// FiveRule measures the cost of pruning DYNSimple's reference metadata:
// a pruner drops the history of clips idle longer than a retention window,
// and the resulting hit rate is compared against unpruned DYNSimple. It
// demonstrates the economics the paper sketches in Sections 4.1/5: generous
// retention is free (the break-even interval of realistic cost ratios is
// enormous), while aggressive pruning degrades the hit rate.
func FiveRule(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		return nil, err
	}
	capacity := repo.CacheSizeForRatio(RatioFigure6)
	fig := &Figure{
		ID:     "fiverule",
		Title:  "DYNSimple hit rate under metadata pruning (Section 4.1/5 future work)",
		XLabel: "Retention window (ticks)",
		YLabel: "Cache hit rate (%)",
	}
	// Baseline: unpruned.
	baseRate, err := fiveRuleRun(repo, dist, capacity, opt, 0)
	if err != nil {
		return nil, err
	}
	pruned := Series{Label: "DYNSimple(K=2) pruned"}
	baseline := Series{Label: "DYNSimple(K=2) unpruned"}
	for _, retention := range FiveRuleRetentions {
		rate, err := fiveRuleRun(repo, dist, capacity, opt, retention)
		if err != nil {
			return nil, err
		}
		pruned.X = append(pruned.X, float64(retention))
		pruned.Y = append(pruned.Y, rate)
		baseline.X = append(baseline.X, float64(retention))
		baseline.Y = append(baseline.Y, baseRate)
	}
	fig.Series = []Series{pruned, baseline}
	return fig, nil
}

// fiveRuleRun drives DYNSimple with an optional metadata pruner (retention
// 0 disables pruning) and returns the hit rate.
func fiveRuleRun(repo *media.Repository, dist *zipf.Distribution, capacity media.Bytes, opt Options, retention vtime.Duration) (float64, error) {
	p, err := dynsimple.New(repo.N(), dynsimple.DefaultK)
	if err != nil {
		return 0, err
	}
	cache, err := core.New(repo, capacity, p)
	if err != nil {
		return 0, err
	}
	var pruner *fiverule.Pruner
	if retention > 0 {
		// A rule whose break-even equals the requested retention: benefit =
		// retention × holding cost.
		rule := fiverule.Rule{
			NetworkCostPerByte:       float64(retention),
			MemoryCostPerBytePerTick: 1,
			AvgClipBytes:             16,
			MetadataBytes:            16,
		}
		pruner, err = fiverule.NewPruner(rule, p.Tracker(), retention/2+1)
		if err != nil {
			return 0, err
		}
	}
	gen, err := workload.NewGenerator(dist, opt.Seed)
	if err != nil {
		return 0, err
	}
	for i := 0; i < opt.Requests; i++ {
		if _, err := cache.Request(gen.Next()); err != nil {
			return 0, err
		}
		if pruner != nil {
			if _, err := pruner.Tick(cache.Now()); err != nil {
				return 0, err
			}
		}
	}
	return cache.Stats().HitRate(), nil
}

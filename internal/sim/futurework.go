package sim

// futurework.go hosts the experiments for the paper's Section 5 future-work
// directions, implemented in packages coop and fiverule: cooperative
// caching across an ad hoc neighborhood, and economic pruning of DYNSimple's
// reference metadata.

import (
	"fmt"
	"time"

	"mediacache/internal/coop"
	"mediacache/internal/core"
	"mediacache/internal/fiverule"
	"mediacache/internal/media"
	"mediacache/internal/policy/dynsimple"
	"mediacache/internal/vtime"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

// CoopDeviceCounts is the neighborhood-size sweep of the cooperative
// experiment.
var CoopDeviceCounts = []int{2, 4, 8}

// Coop compares greedy (uncoordinated) caching against the dedup
// cooperative placement rule across neighborhood sizes: the global metric
// is the fraction of references serviced without the base station
// (Section 5's optimization criterion). Each device runs DYNSimple(K=2)
// with a 2% cache.
func Coop(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		return nil, err
	}
	const ratio = 0.02
	fig := &Figure{
		ID:     "coop",
		Title:  "Cooperative vs greedy caching: references serviced without the base station",
		XLabel: "Devices in radio range",
		YLabel: "Cooperative hit rate (%)",
	}
	build := func(n, maxCopies int) (*coop.Network, error) {
		net := coop.NewNetwork(coop.Config{MaxCopies: maxCopies})
		for i := 0; i < n; i++ {
			p, err := dynsimple.New(repo.N(), dynsimple.DefaultK)
			if err != nil {
				return nil, err
			}
			gen, err := workload.NewGenerator(dist, opt.Seed+uint64(i))
			if err != nil {
				return nil, err
			}
			if _, err := net.AddDevice(repo, repo.CacheSizeForRatio(ratio), p, gen); err != nil {
				return nil, err
			}
		}
		return net, nil
	}
	// Grid: mode-major, device-count-minor.
	modes := []struct {
		label     string
		maxCopies int
	}{
		{"greedy", 0},
		{"cooperative (dedup)", 1},
	}
	nd := len(CoopDeviceCounts)
	type cellOut struct {
		y float64
		m Metrics
	}
	cells, err := mapCells(opt.Parallel, len(modes)*nd, func(i int) (cellOut, error) {
		mode, n := modes[i/nd], CoopDeviceCounts[i%nd]
		start := time.Now()
		net, err := build(n, mode.maxCopies)
		if err != nil {
			return cellOut{}, err
		}
		rounds := opt.Requests / n
		if rounds == 0 {
			rounds = 1
		}
		if err := net.Run(rounds); err != nil {
			return cellOut{}, err
		}
		return cellOut{
			y: net.Stats().CooperativeHitRate(),
			m: Metrics{Requests: uint64(rounds * n), Wall: time.Since(start)},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for mi, mode := range modes {
		s := Series{Label: mode.label}
		for j, n := range CoopDeviceCounts {
			c := cells[mi*nd+j]
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, c.y)
			fig.Cells = append(fig.Cells, CellMetrics{
				Label:   fmt.Sprintf("%s@%d-devices", mode.label, n),
				Metrics: c.m,
			})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// FiveRuleRetentions is the retention-window sweep (in ticks) of the
// metadata-pruning experiment.
var FiveRuleRetentions = []vtime.Duration{50, 200, 1000, 5000}

// FiveRule measures the cost of pruning DYNSimple's reference metadata:
// a pruner drops the history of clips idle longer than a retention window,
// and the resulting hit rate is compared against unpruned DYNSimple. It
// demonstrates the economics the paper sketches in Sections 4.1/5: generous
// retention is free (the break-even interval of realistic cost ratios is
// enormous), while aggressive pruning degrades the hit rate.
func FiveRule(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		return nil, err
	}
	capacity := repo.CacheSizeForRatio(RatioFigure6)
	fig := &Figure{
		ID:     "fiverule",
		Title:  "DYNSimple hit rate under metadata pruning (Section 4.1/5 future work)",
		XLabel: "Retention window (ticks)",
		YLabel: "Cache hit rate (%)",
	}
	// Cell 0 is the unpruned baseline; cells 1..n sweep the retentions.
	type cellOut struct {
		y float64
		m Metrics
	}
	cells, err := mapCells(opt.Parallel, 1+len(FiveRuleRetentions), func(i int) (cellOut, error) {
		var retention vtime.Duration
		if i > 0 {
			retention = FiveRuleRetentions[i-1]
		}
		rate, m, err := fiveRuleRun(repo, dist, capacity, opt, retention)
		if err != nil {
			return cellOut{}, err
		}
		return cellOut{y: rate, m: m}, nil
	})
	if err != nil {
		return nil, err
	}
	fig.Cells = append(fig.Cells, CellMetrics{Label: "unpruned", Metrics: cells[0].m})
	pruned := Series{Label: "DYNSimple(K=2) pruned"}
	baseline := Series{Label: "DYNSimple(K=2) unpruned"}
	for j, retention := range FiveRuleRetentions {
		c := cells[1+j]
		pruned.X = append(pruned.X, float64(retention))
		pruned.Y = append(pruned.Y, c.y)
		baseline.X = append(baseline.X, float64(retention))
		baseline.Y = append(baseline.Y, cells[0].y)
		fig.Cells = append(fig.Cells, CellMetrics{
			Label:   fmt.Sprintf("retention=%d", retention),
			Metrics: c.m,
		})
	}
	fig.Series = []Series{pruned, baseline}
	return fig, nil
}

// fiveRuleRun drives DYNSimple with an optional metadata pruner (retention
// 0 disables pruning) and returns the hit rate plus the cell's engine
// counters.
func fiveRuleRun(repo *media.Repository, dist *zipf.Distribution, capacity media.Bytes, opt Options, retention vtime.Duration) (float64, Metrics, error) {
	start := time.Now()
	p, err := dynsimple.New(repo.N(), dynsimple.DefaultK)
	if err != nil {
		return 0, Metrics{}, err
	}
	cache, err := core.New(repo, capacity, p)
	if err != nil {
		return 0, Metrics{}, err
	}
	var pruner *fiverule.Pruner
	if retention > 0 {
		// A rule whose break-even equals the requested retention: benefit =
		// retention × holding cost.
		rule := fiverule.Rule{
			NetworkCostPerByte:       float64(retention),
			MemoryCostPerBytePerTick: 1,
			AvgClipBytes:             16,
			MetadataBytes:            16,
		}
		pruner, err = fiverule.NewPruner(rule, p.Tracker(), retention/2+1)
		if err != nil {
			return 0, Metrics{}, err
		}
	}
	gen, err := workload.NewGenerator(dist, opt.Seed)
	if err != nil {
		return 0, Metrics{}, err
	}
	for i := 0; i < opt.Requests; i++ {
		if _, err := cache.Request(gen.Next()); err != nil {
			return 0, Metrics{}, err
		}
		if pruner != nil {
			if _, err := pruner.Tick(cache.Now()); err != nil {
				return 0, Metrics{}, err
			}
		}
	}
	stats := cache.Stats()
	return stats.HitRate(), metricsFromStats(stats, time.Since(start)), nil
}

package sim

import "testing"

func TestCoopClaims(t *testing.T) {
	fig, err := Coop(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	greedy := seriesByLabel(t, fig, "greedy")
	dedup := seriesByLabel(t, fig, "cooperative")
	for i := range greedy.X {
		// The cooperative placement rule must not lose to uncoordinated
		// greedy on the global criterion.
		if dedup.Y[i] < greedy.Y[i]-0.01 {
			t.Errorf("%v devices: cooperative %.3f clearly below greedy %.3f",
				greedy.X[i], dedup.Y[i], greedy.Y[i])
		}
	}
	// More devices in range = more neighborhood coverage = higher
	// cooperative hit rate.
	last := len(dedup.Y) - 1
	if dedup.Y[last] <= dedup.Y[0] {
		t.Errorf("cooperative hit rate should grow with neighborhood size: %v", dedup.Y)
	}
	// And the coordination advantage should widen with more devices.
	if dedup.Y[last]-greedy.Y[last] < dedup.Y[0]-greedy.Y[0]-0.02 {
		t.Errorf("dedup advantage should not shrink with more devices: %v vs %v",
			dedup.Y, greedy.Y)
	}
}

func TestFiveRuleClaims(t *testing.T) {
	fig, err := FiveRule(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	pruned := seriesByLabel(t, fig, "DYNSimple(K=2) pruned")
	baseline := seriesByLabel(t, fig, "DYNSimple(K=2) unpruned")
	// Aggressive pruning (smallest retention) costs real hit rate.
	if baseline.Y[0]-pruned.Y[0] < 0.02 {
		t.Errorf("aggressive pruning should hurt: pruned %.3f vs baseline %.3f",
			pruned.Y[0], baseline.Y[0])
	}
	// Generous retention approaches the unpruned hit rate.
	last := len(pruned.Y) - 1
	if baseline.Y[last]-pruned.Y[last] > 0.02 {
		t.Errorf("generous retention should be nearly free: pruned %.3f vs baseline %.3f",
			pruned.Y[last], baseline.Y[last])
	}
	// Hit rate is non-decreasing in the retention window.
	for i := 1; i < len(pruned.Y); i++ {
		if pruned.Y[i] < pruned.Y[i-1]-0.01 {
			t.Errorf("hit rate should grow with retention: %v", pruned.Y)
		}
	}
}

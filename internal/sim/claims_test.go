package sim

// claims_test asserts the paper's qualitative findings as integration tests
// over the actual experiment code. Request counts are reduced versus the
// paper's 10,000 to keep the suite fast; the orderings are robust at this
// scale.

import (
	"testing"
)

// fastOpt trims runs for CI speed while preserving the orderings.
var fastOpt = Options{Seed: DefaultSeed, Requests: 4000}

// seriesByLabel finds a series by prefix of its label.
func seriesByLabel(t *testing.T, fig *Figure, prefix string) Series {
	t.Helper()
	for _, s := range fig.Series {
		if len(s.Label) >= len(prefix) && s.Label[:len(prefix)] == prefix {
			return s
		}
	}
	t.Fatalf("figure %s has no series with prefix %q", fig.ID, prefix)
	return Series{}
}

// meanY averages a series' Y values.
func meanY(s Series) float64 {
	var sum float64
	for _, y := range s.Y {
		sum += y
	}
	return sum / float64(len(s.Y))
}

func TestFigure2aClaims(t *testing.T) {
	fig, err := Figure2a(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	simple := seriesByLabel(t, fig, "Simple")
	lru2 := seriesByLabel(t, fig, "LRU-2")
	gd := seriesByLabel(t, fig, "GreedyDual")
	random := seriesByLabel(t, fig, "Random")
	for i := range simple.X {
		// "Simple provides the highest cache hit rate."
		if simple.Y[i] < gd.Y[i] || simple.Y[i] < lru2.Y[i] || simple.Y[i] < random.Y[i] {
			t.Errorf("ratio %v: Simple (%.3f) is not the highest", simple.X[i], simple.Y[i])
		}
		// "Both Simple and GreedyDual outperform LRU-2 because they consider
		// size."
		if gd.Y[i] <= lru2.Y[i] {
			t.Errorf("ratio %v: GreedyDual (%.3f) <= LRU-2 (%.3f) on variable sizes",
				gd.X[i], gd.Y[i], lru2.Y[i])
		}
		// Random is the yardstick floor.
		if random.Y[i] > simple.Y[i] {
			t.Errorf("ratio %v: Random beats Simple", random.X[i])
		}
	}
	// Larger caches give higher hit rates (monotone in ratio).
	for i := 1; i < len(simple.Y); i++ {
		if simple.Y[i] < simple.Y[i-1] {
			t.Errorf("Simple hit rate not monotone in cache size")
		}
		if random.Y[i] < random.Y[i-1] {
			t.Errorf("Random hit rate not monotone in cache size")
		}
	}
}

func TestFigure2bClaims(t *testing.T) {
	fig, err := Figure2b(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	simple := seriesByLabel(t, fig, "Simple")
	lru2 := seriesByLabel(t, fig, "LRU-2")
	// "LRU-2 provides competitive byte-hit rates. Except for S_T/S_DB=0.0125,
	// Simple provides a higher byte-hit rate than LRU-2."
	if simple.Y[0] >= lru2.Y[0] {
		t.Errorf("at 0.0125 LRU-2 should edge out Simple on byte hit rate (got Simple %.3f vs LRU-2 %.3f)",
			simple.Y[0], lru2.Y[0])
	}
	for i := 1; i < len(simple.Y); i++ {
		if simple.Y[i] <= lru2.Y[i] {
			t.Errorf("ratio %v: Simple byte-hit (%.3f) <= LRU-2 (%.3f)",
				simple.X[i], simple.Y[i], lru2.Y[i])
		}
	}
}

func TestFigure3Claims(t *testing.T) {
	fig, err := Figure3(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	lru2 := seriesByLabel(t, fig, "LRU-2")
	gd := seriesByLabel(t, fig, "GreedyDual")
	// "LRU-2 provides a higher cache hit rate than GreedyDual for a
	// repository of equi-sized clips."
	for i := range lru2.Y {
		if lru2.Y[i] <= gd.Y[i] {
			t.Errorf("ratio %v: LRU-2 (%.3f) <= GreedyDual (%.3f) on equi-sized clips",
				lru2.X[i], lru2.Y[i], gd.Y[i])
		}
	}
}

func TestFigure5aClaims(t *testing.T) {
	fig, err := Figure5a(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	dyn := seriesByLabel(t, fig, "DYNSimple")
	igd := seriesByLabel(t, fig, "IGD")
	gd := seriesByLabel(t, fig, "GreedyDual")
	// "IGD ... hit rate is significantly higher than the original GreedyDual
	// and comparable to DYNSimple" on equi-sized clips.
	for i := range igd.Y {
		if igd.Y[i] <= gd.Y[i] {
			t.Errorf("ratio %v: IGD (%.3f) <= GreedyDual (%.3f)", igd.X[i], igd.Y[i], gd.Y[i])
		}
		if dyn.Y[i] <= gd.Y[i] {
			t.Errorf("ratio %v: DYNSimple (%.3f) <= GreedyDual (%.3f)", dyn.X[i], dyn.Y[i], gd.Y[i])
		}
	}
}

func TestFigure5bClaims(t *testing.T) {
	fig, err := Figure5b(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	dyn32 := seriesByLabel(t, fig, "DYNSimple(K=32)")
	lrus2 := seriesByLabel(t, fig, "LRU-S2")
	lru2 := seriesByLabel(t, fig, "LRU-2")
	gd := seriesByLabel(t, fig, "GreedyDual")
	for i := range dyn32.Y {
		// "DYNSimple outperforms LRU-SK because DYNSimple employs K=32."
		if dyn32.Y[i] <= lrus2.Y[i] {
			t.Errorf("ratio %v: DYNSimple(32) (%.3f) <= LRU-S2 (%.3f)",
				dyn32.X[i], dyn32.Y[i], lrus2.Y[i])
		}
		// "LRU-SK provides cache hit rates comparable with ... GreedyDual"
		// and far above size-blind LRU-2.
		if lrus2.Y[i] <= lru2.Y[i] {
			t.Errorf("ratio %v: LRU-S2 (%.3f) <= LRU-2 (%.3f)",
				lrus2.X[i], lrus2.Y[i], lru2.Y[i])
		}
		if gd.Y[i] <= lru2.Y[i] {
			t.Errorf("ratio %v: GreedyDual (%.3f) <= LRU-2 (%.3f)",
				gd.X[i], gd.Y[i], lru2.Y[i])
		}
	}
}

func TestFigure6aClaims(t *testing.T) {
	fig, err := Figure6a(Options{Seed: DefaultSeed, Requests: 3000})
	if err != nil {
		t.Fatal(err)
	}
	simple := seriesByLabel(t, fig, "Simple")
	dyn2 := seriesByLabel(t, fig, "DYNSimple(K=2)")
	gd := seriesByLabel(t, fig, "GreedyDual")
	// Simple (accurate frequencies) has the best average theoretical rate.
	if meanY(simple) <= meanY(dyn2) {
		t.Errorf("Simple mean %.3f <= DYNSimple(2) mean %.3f", meanY(simple), meanY(dyn2))
	}
	// DYNSimple beats GreedyDual consistently (Section 1: "DYNSimple
	// outperforms GreedyDual consistently").
	if meanY(dyn2) <= meanY(gd) {
		t.Errorf("DYNSimple(2) mean %.3f <= GreedyDual mean %.3f", meanY(dyn2), meanY(gd))
	}
}

func TestFigure7aClaims(t *testing.T) {
	fig, err := Figure7a(Options{Seed: DefaultSeed, Requests: 3000})
	if err != nil {
		t.Fatal(err)
	}
	igd := seriesByLabel(t, fig, "IGD")
	gdf := seriesByLabel(t, fig, "GreedyDual-Freq")
	// "With different g values, IGD provides a higher average cache hit rate
	// when compared with GreedyDual-Freq" — compare means over g > 0.
	var igdSum, gdfSum float64
	n := 0
	for i := range igd.X {
		if igd.X[i] > 0 {
			igdSum += igd.Y[i]
			gdfSum += gdf.Y[i]
			n++
		}
	}
	if n == 0 || igdSum/float64(n) <= gdfSum/float64(n) {
		t.Errorf("IGD mean %.4f <= GreedyDual-Freq mean %.4f over g>0",
			igdSum/float64(n), gdfSum/float64(n))
	}
}

func TestFigure6bTransient(t *testing.T) {
	fig, err := Figure6b(Options{Seed: DefaultSeed, Requests: DefaultRequests})
	if err != nil {
		t.Fatal(err)
	}
	// Every technique drops sharply at request 20,000 when g flips 200->300.
	for _, s := range fig.Series {
		var before, after float64
		for i := range s.X {
			if s.X[i] == 20000 {
				before = s.Y[i]
			}
			if s.X[i] == 20100 {
				after = s.Y[i]
			}
		}
		if before == 0 || after == 0 {
			t.Fatalf("series %s missing samples around the shift", s.Label)
		}
		if after >= before {
			t.Errorf("series %s shows no drop at the shift (%.3f -> %.3f)", s.Label, before, after)
		}
	}
	// Simple recovers fastest: within a few hundred requests it is back
	// near its pre-shift level.
	simple := seriesByLabel(t, fig, "Simple")
	var pre, recovered float64
	for i := range simple.X {
		if simple.X[i] == 20000 {
			pre = simple.Y[i]
		}
		if simple.X[i] == 20500 {
			recovered = simple.Y[i]
		}
	}
	if recovered < pre-0.03 {
		t.Errorf("Simple did not recover within 500 requests (%.3f vs pre %.3f)", recovered, pre)
	}
}

func TestQualityClaims(t *testing.T) {
	fig, err := Quality(Options{Seed: DefaultSeed, Requests: DefaultRequests})
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	// "A higher value of K improves the quality of estimated values":
	// E(K=2) must exceed E at the largest Ks clearly.
	first := s.Y[0]
	last := s.Y[len(s.Y)-1]
	if first <= last {
		t.Errorf("E(K=2)=%.4g not worse than E(K=%v)=%.4g", first, s.X[len(s.X)-1], last)
	}
	if first/last < 2 {
		t.Errorf("expected a clear (>2x) quality improvement, got %.2fx", first/last)
	}
}

func TestSkewClaims(t *testing.T) {
	fig, err := Skew(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	dyn := seriesByLabel(t, fig, "DYNSimple")
	gd := seriesByLabel(t, fig, "GreedyDual")
	// "With a more uniform distribution of access, DYNSimple outperforms the
	// other techniques by a wider margin": the DYNSimple-GD gap at theta=1
	// exceeds the gap at theta=0.
	gapSkewed := dyn.Y[0] - gd.Y[0]
	gapUniform := dyn.Y[len(dyn.Y)-1] - gd.Y[len(gd.Y)-1]
	if gapUniform <= gapSkewed {
		t.Errorf("DYNSimple margin did not widen: skewed gap %.4f vs uniform gap %.4f",
			gapSkewed, gapUniform)
	}
}

func TestRefinementAblation(t *testing.T) {
	fig, err := Refinement(fastOpt)
	if err != nil {
		t.Fatal(err)
	}
	with := seriesByLabel(t, fig, "DYNSimple(K=2)")
	without := seriesByLabel(t, fig, "DYNSimple(K=2,no-refine)")
	// Refinement must not hurt on average.
	if meanY(with) < meanY(without)-0.005 {
		t.Errorf("refinement hurts: %.4f vs %.4f", meanY(with), meanY(without))
	}
}

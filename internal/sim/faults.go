package sim

// faults.go couples the deterministic fault injector (internal/fault) to
// the sweep engine. Each sweep cell derives its own injector from the
// master seed and the cell's coordinate labels — the same derivation as
// CellSeed — so the fault schedule a cell experiences is a pure function
// of (profile, master seed, cell coordinates), independent of worker count
// and claim order. A disabled profile adds no engine option at all, which
// keeps the faults-off path byte-identical to a build without this file.

import (
	"fmt"

	"mediacache/internal/core"
	"mediacache/internal/fault"
	"mediacache/internal/media"
	"mediacache/internal/vtime"
)

// faultOptions returns the engine options implementing o.Faults for the
// sweep cell identified by labels: a core.WithFetch hook that consults a
// cell-local injector on every cacheable miss and fails the fetch when the
// injector draws a fault. Returns nil when the profile is disabled.
func (o Options) faultOptions(labels ...string) []core.Option {
	if !o.Faults.Enabled() {
		return nil
	}
	seed := CellSeed(o.Seed, append([]string{"fault"}, labels...)...)
	inj := fault.New(o.Faults, seed)
	return []core.Option{core.WithFetch(func(clip media.Clip, _ vtime.Time) error {
		if f := inj.Next(); f.Failed() {
			return fmt.Errorf("sim: injected %s fault fetching clip %d", f.Kind, clip.ID)
		}
		return nil
	})}
}

package sim

import (
	"reflect"
	"testing"
	"time"

	"mediacache/internal/fault"
)

// chaosProfile is a substantial failure mix used by the fault-injection
// determinism tests.
var chaosProfile = fault.Profile{
	ErrorRate:   0.1,
	TimeoutRate: 0.05,
	PartialRate: 0.05,
	Latency:     10 * time.Millisecond,
	Jitter:      2 * time.Millisecond,
}

// stripWall zeroes the only legitimately nondeterministic figure field.
func stripWall(fig *Figure) {
	for i := range fig.Cells {
		fig.Cells[i].Wall = 0
	}
}

// TestFaultSweepDeterministic pins the tentpole promise at the experiment
// level: the same (seed, profile) pair yields the identical figure —
// series and engine counters, fault schedule included — regardless of
// worker count; a different seed yields a different fault schedule.
func TestFaultSweepDeterministic(t *testing.T) {
	run := func(seed uint64, parallel int) *Figure {
		t.Helper()
		fig, err := Figure2a(Options{Seed: seed, Requests: 400, Parallel: parallel, Faults: chaosProfile})
		if err != nil {
			t.Fatal(err)
		}
		stripWall(fig)
		return fig
	}
	a, b := run(42, 1), run(42, 1)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed and profile produced different figures")
	}
	par := run(42, 4)
	if !reflect.DeepEqual(a, par) {
		t.Fatal("fault schedule depends on worker count")
	}
	var failed uint64
	for _, c := range a.Cells {
		failed += c.FetchFailed
	}
	if failed == 0 {
		t.Fatal("chaos profile injected no fetch failures")
	}
	other := run(7, 1)
	if reflect.DeepEqual(a.Cells, other.Cells) {
		t.Fatal("different seeds produced identical fault counters")
	}
}

// TestFaultsOffIdentical pins that the zero profile leaves a run
// byte-identical to one that never mentions faults at all.
func TestFaultsOffIdentical(t *testing.T) {
	base, err := Figure2a(Options{Seed: 42, Requests: 400})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Figure2a(Options{Seed: 42, Requests: 400, Faults: fault.Profile{}})
	if err != nil {
		t.Fatal(err)
	}
	stripWall(base)
	stripWall(off)
	if !reflect.DeepEqual(base, off) {
		t.Fatal("zero fault profile changed the figure")
	}
	for _, c := range base.Cells {
		if c.FetchFailed != 0 {
			t.Fatalf("cell %s reports %d fetch failures without faults", c.Label, c.FetchFailed)
		}
	}
}

// TestFaultsDegradeHitRate sanity-checks the engine coupling: under a
// heavy failure profile the caches retain fewer clips (failed fetches are
// never inserted), so the figure-wide hit rate must drop. Individual
// points may wobble — altered cache content shifts randomized tie-breaks
// — so the assertion is on the aggregate.
func TestFaultsDegradeHitRate(t *testing.T) {
	mean := func(fig *Figure) float64 {
		var sum float64
		var n int
		for _, s := range fig.Series {
			for _, y := range s.Y {
				sum += y
				n++
			}
		}
		return sum / float64(n)
	}
	clean, err := Figure3(Options{Seed: 42, Requests: 600})
	if err != nil {
		t.Fatal(err)
	}
	heavy := fault.Profile{ErrorRate: 0.5}
	chaos, err := Figure3(Options{Seed: 42, Requests: 600, Faults: heavy})
	if err != nil {
		t.Fatal(err)
	}
	if mc, mf := mean(clean), mean(chaos); mf >= mc {
		t.Fatalf("mean hit rate did not drop under 50%% fetch errors: clean %v, chaos %v", mc, mf)
	}
}

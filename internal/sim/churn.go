package sim

import (
	"fmt"
	"time"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/vtime"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

// ChurnSetting is one cell column of the Churn experiment: a catalog-churn
// regime plus the invalidation mechanism that services it. TTL > 0 expires
// cached copies by time-to-live (set to the catalog life, so a cached copy
// never outlives its publication window); TTL == 0 is the purge-driven
// variant, where every perish event invalidates the clip explicitly — the
// publisher-issued DELETE.
type ChurnSetting struct {
	Name string
	Spec workload.ChurnSpec // Horizon is filled in from Options.Requests
	TTL  vtime.Duration
}

// ChurnSettings is the regime sweep of the Churn experiment, slowest churn
// first. Three TTL-driven regimes at increasing publish rates, plus a
// purge-driven twin of the middle regime so the two invalidation
// mechanisms are directly comparable at the same churn rate.
var ChurnSettings = []ChurnSetting{
	{"slow-ttl", workload.ChurnSpec{Rate: 0.01, Life: 4000}, 4000},
	{"mid-ttl", workload.ChurnSpec{Rate: 0.02, Life: 2000}, 2000},
	{"fast-ttl", workload.ChurnSpec{Rate: 0.05, Life: 1000}, 1000},
	{"mid-purge", workload.ChurnSpec{Rate: 0.02, Life: 2000}, 0},
}

// Churn is the non-stationary catalog experiment of the churn suite
// (extension beyond the paper, whose catalog is fixed): clips perish and
// fresh ones are published while the cache serves a Zipf-over-the-living
// reference stream. Cached copies of perished clips are dead weight; the
// experiment measures how quickly each technique's utility bookkeeping
// recovers the space, under TTL expiry and under explicit purging. The
// event stream is deterministic per seed, so every cell is exactly
// reproducible at any -parallel setting.
func Churn(opt Options) (*Figure, error) {
	opt = opt.withDefaults()
	repo := media.PaperRepository()
	capacity := repo.CacheSizeForRatio(RatioFigure6)
	fig := &Figure{
		ID:     "churn",
		Title:  "Observed hit rate under catalog churn with TTL / purge invalidation (extension)",
		XLabel: "Churn regime (publish rate rises left to right; last = purge-driven)",
		YLabel: "Cache hit rate (%)",
	}
	specs := []string{"dynsimple:2", "igd:2", "lrusk:2", "greedydual", "gdsp", "gdfreq"}
	// Grid: spec-major, setting-minor.
	ns := len(ChurnSettings)
	type cellOut struct {
		name string
		y    float64
		m    Metrics
	}
	cells, err := mapCells(opt.Parallel, len(specs)*ns, func(i int) (cellOut, error) {
		spec, setting := specs[i/ns], ChurnSettings[i%ns]
		start := time.Now()
		cspec := setting.Spec
		cspec.Horizon = opt.Requests
		gen, err := workload.NewChurn(repo.N(), zipf.DefaultMean, cspec, opt.Seed)
		if err != nil {
			return cellOut{}, err
		}
		var opts []core.Option
		if setting.TTL > 0 {
			opts = append(opts, core.WithTTL(setting.TTL))
		}
		cache, err := NewCache(spec, repo, capacity, nil, opt.Seed, opts...)
		if err != nil {
			return cellOut{}, err
		}
		// The churn schedule drives the cache through its unified Source
		// face. Purge-driven regime (TTL == 0): every perish event is the
		// publisher's DELETE; under TTL the expiry does the job on its own.
		if _, err := RunSource(spec, cache, gen.Source(), SourceConfig{Purge: setting.TTL == 0}); err != nil {
			return cellOut{}, err
		}
		stats := cache.Stats()
		return cellOut{
			name: cache.Policy().Name(),
			y:    stats.HitRate(),
			m:    metricsFromStats(stats, time.Since(start)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for si, spec := range specs {
		s := Series{Label: cells[si*ns].name}
		for j, setting := range ChurnSettings {
			c := cells[si*ns+j]
			s.X = append(s.X, float64(j))
			s.Y = append(s.Y, c.y)
			fig.Cells = append(fig.Cells, CellMetrics{
				Label:   fmt.Sprintf("%s@%s", spec, setting.Name),
				Metrics: c.m,
			})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

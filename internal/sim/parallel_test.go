package sim

// parallel_test.go pins the determinism promise of the worker-pool sweep
// engine: at any worker count, every figure experiment must produce output
// byte-identical to a sequential run — same series labels, same X, same Y
// to full float precision. Cell metrics are excluded from the comparison
// (wall-clock times legitimately differ between runs).

import (
	"errors"
	"fmt"
	"testing"
)

// figuresEqual reports the first difference between two figures, ignoring
// Cells (wall times vary run to run).
func figuresEqual(a, b *Figure) error {
	if a.ID != b.ID || a.Title != b.Title || a.XLabel != b.XLabel || a.YLabel != b.YLabel {
		return fmt.Errorf("figure metadata differs: %q/%q vs %q/%q", a.ID, a.Title, b.ID, b.Title)
	}
	if len(a.Series) != len(b.Series) {
		return fmt.Errorf("series count %d vs %d", len(a.Series), len(b.Series))
	}
	for i := range a.Series {
		sa, sb := a.Series[i], b.Series[i]
		if sa.Label != sb.Label {
			return fmt.Errorf("series %d label %q vs %q", i, sa.Label, sb.Label)
		}
		if len(sa.X) != len(sb.X) || len(sa.Y) != len(sb.Y) {
			return fmt.Errorf("series %d (%s): shape %dx%d vs %dx%d",
				i, sa.Label, len(sa.X), len(sa.Y), len(sb.X), len(sb.Y))
		}
		for j := range sa.X {
			if sa.X[j] != sb.X[j] {
				return fmt.Errorf("series %d (%s) X[%d]: %v vs %v", i, sa.Label, j, sa.X[j], sb.X[j])
			}
		}
		for j := range sa.Y {
			if sa.Y[j] != sb.Y[j] {
				return fmt.Errorf("series %d (%s) Y[%d]: %v vs %v", i, sa.Label, j, sa.Y[j], sb.Y[j])
			}
		}
	}
	return nil
}

// TestParallelMatchesSequential runs every registered experiment at
// Parallel=1 and Parallel=8 and requires exact equality. Figures 2 and 5
// (the ISSUE's named targets) are covered because Experiments includes
// them; the loop extends the guarantee to the whole catalog.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment catalog is slow")
	}
	opt := Options{Seed: DefaultSeed, Requests: 600}
	for _, e := range Experiments {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			seqOpt := opt
			seqOpt.Parallel = 1
			seq, err := e.Run(seqOpt)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			parOpt := opt
			parOpt.Parallel = 8
			par, err := e.Run(parOpt)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if err := figuresEqual(seq, par); err != nil {
				t.Errorf("parallel output diverges from sequential: %v", err)
			}
			if len(par.Cells) == 0 {
				t.Error("figure has no cell metrics")
			}
			total := par.TotalMetrics()
			if total.Requests == 0 {
				t.Errorf("cell metrics report zero requests: %+v", total)
			}
		})
	}
}

// TestMapCellsOrderAndErrors exercises the pool plumbing directly.
func TestMapCellsOrderAndErrors(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		out, err := mapCells(workers, 50, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 50 {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}

	// Empty input.
	if out, err := mapCells(4, 0, func(i int) (int, error) { return 0, nil }); err != nil || out != nil {
		t.Fatalf("empty grid: out=%v err=%v", out, err)
	}

	// The lowest-index error wins, sequential or parallel.
	sentinel := errors.New("cell failed")
	for _, workers := range []int{1, 8} {
		_, err := mapCells(workers, 40, func(i int) (int, error) {
			if i == 7 || i == 23 {
				return 0, fmt.Errorf("%w: cell %d", sentinel, i)
			}
			return i, nil
		})
		if err == nil || !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want sentinel", workers, err)
		}
		if got := err.Error(); got != "cell failed: cell 7" {
			t.Fatalf("workers=%d: err = %q, want lowest-index cell 7", workers, got)
		}
	}

	// forEachCell propagates errors the same way.
	if err := forEachCell(4, 10, func(i int) error {
		if i == 3 {
			return sentinel
		}
		return nil
	}); !errors.Is(err, sentinel) {
		t.Fatalf("forEachCell err = %v", err)
	}
}

// TestCellSeed checks that the derivation is pure and label-sensitive.
func TestCellSeed(t *testing.T) {
	a := CellSeed(42, "figure5b", "lruk:2", "0.125")
	b := CellSeed(42, "figure5b", "lruk:2", "0.125")
	if a != b {
		t.Fatal("CellSeed is not deterministic")
	}
	if CellSeed(42, "figure5b", "lruk:2", "0.25") == a {
		t.Error("different labels should give different seeds")
	}
	if CellSeed(43, "figure5b", "lruk:2", "0.125") == a {
		t.Error("different master seeds should give different seeds")
	}
	// Label-path sensitivity: ("ab","c") must differ from ("a","bc").
	if CellSeed(42, "ab", "c") == CellSeed(42, "a", "bc") {
		t.Error("seed must depend on the label path, not its concatenation")
	}
}

// TestReplicateBoundedParallel checks that Replicate still aggregates
// correctly through the pool.
func TestReplicateBoundedParallel(t *testing.T) {
	opt := Options{Seed: DefaultSeed, Requests: 300, Parallel: 4}
	mean, std, err := Replicate(Figure3, opt, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(mean.Series) == 0 || len(std.Series) != len(mean.Series) {
		t.Fatalf("mean %d series, std %d", len(mean.Series), len(std.Series))
	}
	// Sequential replication must agree exactly.
	seqOpt := opt
	seqOpt.Parallel = 1
	mean2, _, err := Replicate(Figure3, seqOpt, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := figuresEqual(mean, mean2); err != nil {
		t.Errorf("replicated means diverge across worker counts: %v", err)
	}
}

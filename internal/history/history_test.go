package history

import (
	"math"
	"testing"
	"testing/quick"

	"mediacache/internal/media"
	"mediacache/internal/vtime"
)

func TestNewTrackerPanics(t *testing.T) {
	for _, c := range []struct{ n, k int }{{0, 2}, {-1, 2}, {5, 0}, {5, -3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTracker(%d,%d) should panic", c.n, c.k)
				}
			}()
			NewTracker(c.n, c.k)
		}()
	}
}

func TestAccessors(t *testing.T) {
	tr := NewTracker(10, 3)
	if tr.K() != 3 || tr.N() != 10 {
		t.Fatalf("K=%d N=%d", tr.K(), tr.N())
	}
}

func TestObserveAndTimes(t *testing.T) {
	tr := NewTracker(5, 2)
	tr.Observe(1, 10)
	if when, ok := tr.LastTime(1); !ok || when != 10 {
		t.Fatalf("LastTime = %v,%v", when, ok)
	}
	if _, ok := tr.KthLastTime(1); ok {
		t.Fatal("KthLastTime should fail with 1 of 2 refs")
	}
	tr.Observe(1, 20)
	if when, ok := tr.KthLastTime(1); !ok || when != 10 {
		t.Fatalf("KthLastTime = %v,%v want 10", when, ok)
	}
	tr.Observe(1, 30)
	if when, _ := tr.LastTime(1); when != 30 {
		t.Fatalf("LastTime = %v want 30", when)
	}
	if when, _ := tr.KthLastTime(1); when != 20 {
		t.Fatalf("KthLastTime = %v want 20 after aging out t=10", when)
	}
	if tr.Count(1) != 3 {
		t.Fatalf("Count = %d want 3", tr.Count(1))
	}
	if tr.Tracked(1) != 2 {
		t.Fatalf("Tracked = %d want 2", tr.Tracked(1))
	}
}

func TestUnknownIDsIgnored(t *testing.T) {
	tr := NewTracker(3, 2)
	tr.Observe(0, 5)
	tr.Observe(4, 5)
	tr.Observe(-1, 5)
	if tr.TrackedClips() != 0 {
		t.Fatal("unknown ids must not be tracked")
	}
	if tr.Count(0) != 0 || tr.Count(4) != 0 {
		t.Fatal("unknown id counts must be 0")
	}
	if tr.Rate(99, 10) != 0 {
		t.Fatal("unknown id rate must be 0")
	}
}

func TestBackwardKDistance(t *testing.T) {
	tr := NewTracker(4, 2)
	if !math.IsInf(tr.BackwardKDistance(1, 100), 1) {
		t.Fatal("no history should give +Inf distance")
	}
	tr.Observe(1, 10)
	if !math.IsInf(tr.BackwardKDistance(1, 100), 1) {
		t.Fatal("one of two refs should give +Inf distance")
	}
	tr.Observe(1, 40)
	if got := tr.BackwardKDistance(1, 100); got != 90 {
		t.Fatalf("distance = %v want 90", got)
	}
}

func TestOldestTracked(t *testing.T) {
	tr := NewTracker(2, 3)
	if _, ok := tr.OldestTracked(1); ok {
		t.Fatal("no history should have no oldest")
	}
	tr.Observe(1, 5)
	tr.Observe(1, 9)
	if when, ok := tr.OldestTracked(1); !ok || when != 5 {
		t.Fatalf("oldest = %v,%v want 5", when, ok)
	}
	tr.Observe(1, 12)
	tr.Observe(1, 20) // t=5 ages out
	if when, _ := tr.OldestTracked(1); when != 9 {
		t.Fatalf("oldest = %v want 9", when)
	}
}

func TestRate(t *testing.T) {
	tr := NewTracker(3, 2)
	if tr.Rate(1, 50) != 0 {
		t.Fatal("rate of unreferenced clip must be 0")
	}
	tr.Observe(1, 10)
	tr.Observe(1, 30)
	// λ = K / Δ_K = 2 / (50-10) = 0.05
	if got := tr.Rate(1, 50); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("rate = %v want 0.05", got)
	}
	// Single reference: count/(now-oldest) = 1/40.
	tr.Observe(2, 10)
	if got := tr.Rate(2, 50); math.Abs(got-0.025) > 1e-12 {
		t.Fatalf("rate = %v want 0.025", got)
	}
	// Reference at exactly now: clamp to count per tick.
	tr.Observe(3, 50)
	if got := tr.Rate(3, 50); got != 1 {
		t.Fatalf("rate = %v want 1", got)
	}
}

func TestRateMatchesPaperFormula(t *testing.T) {
	// λ = K / (now - t_{K-th last}) when a clip has a full history.
	tr := NewTracker(1, 4)
	times := []vtime.Time{3, 8, 15, 21, 33, 47}
	for _, tm := range times {
		tr.Observe(1, tm)
	}
	now := vtime.Time(60)
	kth, ok := tr.KthLastTime(1)
	if !ok {
		t.Fatal("expected full history")
	}
	want := 4 / float64(now-kth)
	if got := tr.Rate(1, now); math.Abs(got-want) > 1e-12 {
		t.Fatalf("rate = %v want %v", got, want)
	}
}

func TestEstimatedFrequenciesSumToOne(t *testing.T) {
	tr := NewTracker(4, 2)
	tr.Observe(1, 1)
	tr.Observe(1, 5)
	tr.Observe(2, 2)
	tr.Observe(3, 9)
	est := tr.EstimatedFrequencies(10)
	var sum float64
	for _, e := range est {
		sum += e
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("estimates sum to %v", sum)
	}
	if est[3] != 0 {
		t.Fatal("unreferenced clip must have estimate 0")
	}
}

func TestEstimatedFrequenciesEmpty(t *testing.T) {
	tr := NewTracker(3, 2)
	for _, e := range tr.EstimatedFrequencies(10) {
		if e != 0 {
			t.Fatal("want all-zero estimates with no history")
		}
	}
}

func TestEstimateImprovesWithK(t *testing.T) {
	// Section 4.1: larger K improves estimate quality. Feed both trackers an
	// identical deterministic round-robin-weighted stream and compare E.
	const n = 32
	truth := make([]float64, n)
	var norm float64
	for i := range truth {
		truth[i] = 1 / float64(i+1)
		norm += truth[i]
	}
	for i := range truth {
		truth[i] /= norm
	}
	small := NewTracker(n, 2)
	large := NewTracker(n, 24)
	// Deterministic stream approximating the truth distribution via Bresenham
	// style accumulation.
	acc := make([]float64, n)
	now := vtime.Time(0)
	for r := 0; r < 20000; r++ {
		best, bestv := 0, -1.0
		for i := range acc {
			acc[i] += truth[i]
			if acc[i] > bestv {
				best, bestv = i, acc[i]
			}
		}
		acc[best]--
		now++
		small.Observe(media.ClipID(best+1), now)
		large.Observe(media.ClipID(best+1), now)
	}
	eSmall := Quality(small.EstimatedFrequencies(now), truth)
	eLarge := Quality(large.EstimatedFrequencies(now), truth)
	if eLarge >= eSmall {
		t.Fatalf("E(K=24)=%v not better than E(K=2)=%v", eLarge, eSmall)
	}
}

func TestForget(t *testing.T) {
	tr := NewTracker(2, 2)
	tr.Observe(1, 5)
	tr.Observe(1, 9)
	tr.Forget(1)
	if tr.Tracked(1) != 0 || tr.Count(1) != 0 {
		t.Fatal("Forget should clear all history")
	}
	if _, ok := tr.LastTime(1); ok {
		t.Fatal("LastTime after Forget should fail")
	}
	tr.Forget(99) // must not panic
}

func TestPruneOlderThan(t *testing.T) {
	tr := NewTracker(3, 2)
	tr.Observe(1, 10)
	tr.Observe(2, 90)
	dropped := tr.PruneOlderThan(100, 50)
	if dropped != 1 {
		t.Fatalf("dropped = %d want 1", dropped)
	}
	if tr.Tracked(1) != 0 {
		t.Fatal("clip 1 should be pruned")
	}
	if tr.Tracked(2) != 1 {
		t.Fatal("clip 2 should survive")
	}
}

func TestTrackedClipsAndMemory(t *testing.T) {
	tr := NewTracker(10, 2)
	if tr.TrackedClips() != 0 || tr.MemoryOverheadBytes() != 0 {
		t.Fatal("fresh tracker should have no overhead")
	}
	tr.Observe(1, 1)
	tr.Observe(1, 2)
	tr.Observe(2, 3)
	if tr.TrackedClips() != 2 {
		t.Fatalf("TrackedClips = %d", tr.TrackedClips())
	}
	if tr.MemoryOverheadBytes() != 3*8 {
		t.Fatalf("MemoryOverheadBytes = %d want 24", tr.MemoryOverheadBytes())
	}
}

func TestQualityPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quality([]float64{1}, []float64{1, 2})
}

func TestQualityZeroForPerfectEstimate(t *testing.T) {
	v := []float64{0.5, 0.3, 0.2}
	if Quality(v, v) != 0 {
		t.Fatal("perfect estimate must have E = 0")
	}
}

func TestRingWrapProperty(t *testing.T) {
	// The K-th last time always equals the (count-K+1)-th observation from a
	// monotone stream once at least K observations happened.
	check := func(raw []uint8, kRaw uint8) bool {
		k := int(kRaw%5) + 1
		tr := NewTracker(1, k)
		var all []vtime.Time
		now := vtime.Time(0)
		for _, step := range raw {
			now += vtime.Time(step%7) + 1
			tr.Observe(1, now)
			all = append(all, now)
		}
		if len(all) < k {
			_, ok := tr.KthLastTime(1)
			return !ok
		}
		want := all[len(all)-k]
		got, ok := tr.KthLastTime(1)
		return ok && got == want
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkObserve(b *testing.B) {
	tr := NewTracker(576, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Observe(media.ClipID(i%576+1), vtime.Time(i))
	}
}

func BenchmarkEstimatedFrequencies(b *testing.B) {
	tr := NewTracker(576, 2)
	for i := 0; i < 5000; i++ {
		tr.Observe(media.ClipID(i%576+1), vtime.Time(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.EstimatedFrequencies(vtime.Time(5000 + i))
	}
}

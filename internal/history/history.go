// Package history tracks the last K reference times of every clip in the
// repository, the bookkeeping shared by DYNSimple, IGD, LRU-K and LRU-SK
// (Sections 3.2, 4.1–4.3 of the paper).
//
// A Tracker maintains, for each clip, a ring buffer of its K most recent
// reference timestamps — including clips that are not cache resident, exactly
// as DYNSimple requires ("Dynamic Simple maintains K time stamps for those
// clips that are not in its cache", Section 4.1). From this it derives the
// quantities the policies consume:
//
//   - the backward-K distance Δ_K(i, t) = t − (time of the K-th most recent
//     reference to clip i), the victim criterion of LRU-K and LRU-SK;
//   - the arrival-rate estimate λ_i(t) = K / Δ_K(i, t) and the estimated
//     access frequency f̂_i = λ_i / Σ_j λ_j of DYNSimple;
//   - the estimate-quality metric E = sqrt(Σ_i (f̂_i − f_i)²) of Section 4.1.
//
// The Tracker also supports forgetting per-clip history, the hook used by the
// five-minute-rule style metadata pruning the paper proposes as future work
// (implemented in package fiverule).
package history

import (
	"fmt"
	"math"

	"mediacache/internal/media"
	"mediacache/internal/vtime"
)

// Tracker records the last K reference times for clips 1..N.
type Tracker struct {
	k     int
	n     int
	rings []ring
}

// ring is a fixed-capacity buffer of the most recent reference times for one
// clip. times[head] is the most recent reference once count > 0.
type ring struct {
	times []vtime.Time
	head  int
	count int // number of valid entries, <= K
	total uint64
}

// NewTracker returns a Tracker for n clips remembering the last k references
// each. It panics if n or k is not positive; tracker parameters are
// experiment constants, not runtime inputs.
func NewTracker(n, k int) *Tracker {
	if n <= 0 {
		panic(fmt.Sprintf("history: clip count must be positive, got %d", n))
	}
	if k <= 0 {
		panic(fmt.Sprintf("history: K must be positive, got %d", k))
	}
	t := &Tracker{k: k, n: n, rings: make([]ring, n)}
	// One backing array for all rings keeps the tracker cache friendly and
	// allocation light.
	backing := make([]vtime.Time, n*k)
	for i := range t.rings {
		t.rings[i].times = backing[i*k : (i+1)*k : (i+1)*k]
	}
	return t
}

// K returns the history depth.
func (t *Tracker) K() int { return t.k }

// N returns the number of tracked clips.
func (t *Tracker) N() int { return t.n }

// valid reports whether id is a tracked clip identity.
func (t *Tracker) valid(id media.ClipID) bool {
	return id >= 1 && int(id) <= t.n
}

// Observe records a reference to clip id at time now. References must arrive
// in non-decreasing time order. Unknown ids are ignored so the tracker can be
// driven directly from arbitrary traces.
func (t *Tracker) Observe(id media.ClipID, now vtime.Time) {
	if !t.valid(id) {
		return
	}
	r := &t.rings[id-1]
	r.head = (r.head + 1) % t.k
	r.times[r.head] = now
	if r.count < t.k {
		r.count++
	}
	r.total++
}

// Count returns the total number of references observed for clip id,
// including references that have aged out of the ring.
func (t *Tracker) Count(id media.ClipID) uint64 {
	if !t.valid(id) {
		return 0
	}
	return t.rings[id-1].total
}

// Tracked returns how many reference times are currently retained for clip
// id (at most K).
func (t *Tracker) Tracked(id media.ClipID) int {
	if !t.valid(id) {
		return 0
	}
	return t.rings[id-1].count
}

// LastTime returns the most recent reference time of clip id. ok is false if
// the clip has never been referenced (or history was forgotten).
func (t *Tracker) LastTime(id media.ClipID) (when vtime.Time, ok bool) {
	if !t.valid(id) {
		return vtime.Never, false
	}
	r := &t.rings[id-1]
	if r.count == 0 {
		return vtime.Never, false
	}
	return r.times[r.head], true
}

// KthLastTime returns the time of the K-th most recent reference to clip id.
// ok is false when fewer than K references are retained.
func (t *Tracker) KthLastTime(id media.ClipID) (when vtime.Time, ok bool) {
	if !t.valid(id) {
		return vtime.Never, false
	}
	r := &t.rings[id-1]
	if r.count < t.k {
		return vtime.Never, false
	}
	oldest := (r.head + 1) % t.k
	return r.times[oldest], true
}

// OldestTracked returns the oldest retained reference time, however many
// references are retained. ok is false when the clip has no history.
func (t *Tracker) OldestTracked(id media.ClipID) (when vtime.Time, ok bool) {
	if !t.valid(id) {
		return vtime.Never, false
	}
	r := &t.rings[id-1]
	if r.count == 0 {
		return vtime.Never, false
	}
	oldest := (r.head - r.count + 1 + t.k) % t.k
	return r.times[oldest], true
}

// BackwardKDistance returns Δ_K(id, now): the interval from now back to the
// K-th most recent reference. Clips with fewer than K references have an
// infinite backward distance, matching the LRU-K convention that such pages
// are preferred victims.
func (t *Tracker) BackwardKDistance(id media.ClipID, now vtime.Time) float64 {
	kth, ok := t.KthLastTime(id)
	if !ok {
		return math.Inf(1)
	}
	return float64(now - kth)
}

// Rate estimates the arrival rate λ_id at time now as described in
// Section 4.1: with K retained references, λ = K / Δ_K. Clips with fewer
// than K references are estimated from the references available; clips with
// no history have rate 0.
func (t *Tracker) Rate(id media.ClipID, now vtime.Time) float64 {
	if !t.valid(id) {
		return 0
	}
	r := &t.rings[id-1]
	if r.count == 0 {
		return 0
	}
	oldest, _ := t.OldestTracked(id)
	span := float64(now - oldest)
	if span <= 0 {
		// Only possible when the sole tracked reference happened right now;
		// treat the clip as maximally hot at one reference per tick.
		return float64(r.count)
	}
	return float64(r.count) / span
}

// EstimatedFrequencies returns f̂_i = λ_i / Σ_j λ_j for every clip
// (indexed by id-1). When no clip has any history the result is all zeros.
func (t *Tracker) EstimatedFrequencies(now vtime.Time) []float64 {
	est := make([]float64, t.n)
	var sum float64
	for i := range est {
		est[i] = t.Rate(media.ClipID(i+1), now)
		sum += est[i]
	}
	if sum == 0 {
		return est
	}
	for i := range est {
		est[i] /= sum
	}
	return est
}

// Forget discards the reference history of clip id, as a metadata-pruning
// rule would (Section 4.1's storage-overhead discussion). The total
// reference count is also cleared.
func (t *Tracker) Forget(id media.ClipID) {
	if !t.valid(id) {
		return
	}
	t.rings[id-1] = ring{times: t.rings[id-1].times}
}

// PruneOlderThan forgets the history of every clip whose most recent
// reference is older than age ticks before now, returning how many clip
// histories were dropped. This is the mechanism behind package fiverule.
func (t *Tracker) PruneOlderThan(now vtime.Time, age vtime.Duration) int {
	dropped := 0
	for i := range t.rings {
		r := &t.rings[i]
		if r.count == 0 {
			continue
		}
		if now-r.times[r.head] > age {
			t.Forget(media.ClipID(i + 1))
			dropped++
		}
	}
	return dropped
}

// TrackedClips returns how many clips currently retain at least one
// reference time. Together with K this bounds the tracker's memory overhead
// (the paper's "4 megabytes for K=2 time stamps of one million clips").
func (t *Tracker) TrackedClips() int {
	n := 0
	for i := range t.rings {
		if t.rings[i].count > 0 {
			n++
		}
	}
	return n
}

// MemoryOverheadBytes estimates the bytes of timestamp metadata currently
// retained, at 8 bytes per stamp (the paper assumes 4-byte stamps; we store
// 64-bit times).
func (t *Tracker) MemoryOverheadBytes() int64 {
	var stamps int64
	for i := range t.rings {
		stamps += int64(t.rings[i].count)
	}
	return stamps * 8
}

// Quality computes the estimate-quality metric of Section 4.1,
// E = sqrt(Σ_i (f̂_i − f_i)²), between an estimated and a true frequency
// vector. It panics if the vectors have different lengths.
func Quality(estimated, truth []float64) float64 {
	if len(estimated) != len(truth) {
		panic(fmt.Sprintf("history: vector lengths differ (%d vs %d)", len(estimated), len(truth)))
	}
	var sum float64
	for i := range estimated {
		d := estimated[i] - truth[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Package texttable renders experiment figures as aligned text tables and
// CSV, the output format of cmd/experiments and the benchmark harness.
package texttable

import (
	"fmt"
	"io"
	"strings"

	"mediacache/internal/sim"
)

// RenderFigure writes fig as an aligned table: one row per x value, one
// column per series. Y values are rendered with render (defaults to
// percentage with one decimal).
func RenderFigure(w io.Writer, fig *sim.Figure, render func(float64) string) error {
	if render == nil {
		render = Percent
	}
	if _, err := fmt.Fprintf(w, "Figure %s: %s\n", fig.ID, fig.Title); err != nil {
		return err
	}
	header := make([]string, 0, len(fig.Series)+1)
	header = append(header, fig.XLabel)
	for _, s := range fig.Series {
		header = append(header, s.Label)
	}
	rows := [][]string{header}
	for i := range xAxis(fig) {
		row := make([]string, 0, len(header))
		row = append(row, trimFloat(xAxis(fig)[i]))
		for _, s := range fig.Series {
			if i < len(s.Y) {
				row = append(row, render(s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	return writeAligned(w, rows)
}

// RenderCSV writes fig as CSV: x,<series...> with raw float values.
func RenderCSV(w io.Writer, fig *sim.Figure) error {
	cols := []string{csvEscape(fig.XLabel)}
	for _, s := range fig.Series {
		cols = append(cols, csvEscape(s.Label))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i := range xAxis(fig) {
		row := []string{fmt.Sprintf("%g", xAxis(fig)[i])}
		for _, s := range fig.Series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%g", s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// RenderRows writes rows (first row the header) with the same column
// alignment RenderFigure uses; cmd/traceql renders query results with it.
func RenderRows(w io.Writer, rows [][]string) error { return writeAligned(w, rows) }

// Percent renders a [0,1] rate as a percentage with one decimal.
func Percent(v float64) string { return fmt.Sprintf("%.1f", v*100) }

// Raw renders the value with %g.
func Raw(v float64) string { return fmt.Sprintf("%g", v) }

// Scientific renders with three significant digits in e-notation, for the
// estimate-quality experiment.
func Scientific(v float64) string { return fmt.Sprintf("%.3g", v) }

// xAxis returns the longest X vector across series (they normally agree).
func xAxis(fig *sim.Figure) []float64 {
	var longest []float64
	for _, s := range fig.Series {
		if len(s.X) > len(longest) {
			longest = s.X
		}
	}
	return longest
}

// trimFloat renders an axis value compactly.
func trimFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// writeAligned pads each column to its widest cell.
func writeAligned(w io.Writer, rows [][]string) error {
	if len(rows) == 0 {
		return nil
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for _, row := range rows {
		b.Reset()
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(row)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// csvEscape quotes a field when needed.
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

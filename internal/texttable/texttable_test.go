package texttable

import (
	"bytes"
	"strings"
	"testing"

	"mediacache/internal/sim"
)

func sampleFigure() *sim.Figure {
	return &sim.Figure{
		ID:     "2a",
		Title:  "Sample",
		XLabel: "S_T/S_DB",
		YLabel: "Hit rate",
		Series: []sim.Series{
			{Label: "Simple", X: []float64{0.1, 0.2}, Y: []float64{0.5, 0.75}},
			{Label: "LRU-2", X: []float64{0.1, 0.2}, Y: []float64{0.3, 0.4}},
		},
	}
}

func TestRenderFigure(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderFigure(&buf, sampleFigure(), nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 2a: Sample", "S_T/S_DB", "Simple", "LRU-2", "50.0", "75.0", "30.0", "40.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
}

func TestRenderFigureCustomRenderer(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderFigure(&buf, sampleFigure(), Raw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.5") {
		t.Fatalf("raw renderer not applied:\n%s", buf.String())
	}
}

func TestRenderFigureRaggedSeries(t *testing.T) {
	fig := sampleFigure()
	fig.Series[1].X = fig.Series[1].X[:1]
	fig.Series[1].Y = fig.Series[1].Y[:1]
	var buf bytes.Buffer
	if err := RenderFigure(&buf, fig, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "-") {
		t.Fatal("missing cells should render as '-'")
	}
}

func TestRenderCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderCSV(&buf, sampleFigure()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), buf.String())
	}
	if lines[0] != "S_T/S_DB,Simple,LRU-2" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "0.1,0.5,0.3" {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestCSVEscaping(t *testing.T) {
	fig := sampleFigure()
	fig.Series[0].Label = `weird,"label"`
	var buf bytes.Buffer
	if err := RenderCSV(&buf, fig); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"weird,""label"""`) {
		t.Fatalf("label not escaped: %s", buf.String())
	}
}

func TestRenderers(t *testing.T) {
	if Percent(0.123) != "12.3" {
		t.Errorf("Percent = %q", Percent(0.123))
	}
	if Raw(1.5) != "1.5" {
		t.Errorf("Raw = %q", Raw(1.5))
	}
	if Scientific(0.000123) != "0.000123" {
		t.Errorf("Scientific = %q", Scientific(0.000123))
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(100) != "100" {
		t.Errorf("trimFloat(100) = %q", trimFloat(100))
	}
	if trimFloat(0.125) != "0.125" {
		t.Errorf("trimFloat(0.125) = %q", trimFloat(0.125))
	}
}

func TestEmptyFigure(t *testing.T) {
	fig := &sim.Figure{ID: "x", Title: "empty"}
	var buf bytes.Buffer
	if err := RenderFigure(&buf, fig, nil); err != nil {
		t.Fatal(err)
	}
	if err := RenderCSV(&buf, fig); err != nil {
		t.Fatal(err)
	}
}

func TestRenderPlot(t *testing.T) {
	fig := sampleFigure()
	var buf bytes.Buffer
	if err := RenderPlot(&buf, fig, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 2a", "A = Simple", "B = LRU-2", "S_T/S_DB = 0.1 .. 0.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Fatal("plot markers missing")
	}
}

func TestRenderPlotEdgeCases(t *testing.T) {
	var buf bytes.Buffer
	// Empty figure.
	if err := RenderPlot(&buf, &sim.Figure{ID: "x"}, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(no series)") {
		t.Fatal("empty figure message missing")
	}
	// Series with no data points.
	buf.Reset()
	fig := &sim.Figure{ID: "y", Series: []sim.Series{{Label: "empty"}}}
	if err := RenderPlot(&buf, fig, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(no data)") {
		t.Fatal("no-data message missing")
	}
	// Flat series must not divide by zero.
	buf.Reset()
	flat := &sim.Figure{ID: "z", Series: []sim.Series{{Label: "flat", X: []float64{1, 2}, Y: []float64{0.5, 0.5}}}}
	if err := RenderPlot(&buf, flat, 30, 8); err != nil {
		t.Fatal(err)
	}
}

package texttable

import (
	"fmt"
	"io"
	"math"
	"strings"

	"mediacache/internal/sim"
)

// RenderPlot draws fig as an ASCII chart: one marker letter per series,
// x positions mapped by sample index, y values scaled into height rows.
// Intended for the transient figures (6.b, 7.b) whose hundreds of samples
// overwhelm tables. Width and height are the plot area in characters;
// non-positive values use 72×20.
func RenderPlot(w io.Writer, fig *sim.Figure, width, height int) error {
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	if _, err := fmt.Fprintf(w, "Figure %s: %s\n", fig.ID, fig.Title); err != nil {
		return err
	}
	if len(fig.Series) == 0 {
		_, err := fmt.Fprintln(w, "(no series)")
		return err
	}
	yMin, yMax := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, s := range fig.Series {
		for _, y := range s.Y {
			if y < yMin {
				yMin = y
			}
			if y > yMax {
				yMax = y
			}
		}
		if len(s.Y) > maxLen {
			maxLen = len(s.Y)
		}
	}
	if maxLen == 0 {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}
	if yMax == yMin {
		yMax = yMin + 1 // flat series: avoid a zero range
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marker := func(i int) byte { return byte('A' + i%26) }
	for si, s := range fig.Series {
		for xi, y := range s.Y {
			col := 0
			if maxLen > 1 {
				col = xi * (width - 1) / (maxLen - 1)
			}
			rowF := (y - yMin) / (yMax - yMin) * float64(height-1)
			row := height - 1 - int(math.Round(rowF))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = marker(si)
		}
	}

	// Y-axis labels on the top, middle and bottom rows.
	axis := func(row int) string {
		frac := float64(height-1-row) / float64(height-1)
		return fmt.Sprintf("%8.3f", yMin+frac*(yMax-yMin))
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", 8)
		if r == 0 || r == height-1 || r == height/2 {
			label = axis(r)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, grid[r]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width)); err != nil {
		return err
	}
	// X-axis range annotation.
	xs := xAxis(fig)
	if len(xs) > 0 {
		if _, err := fmt.Fprintf(w, "%s  %s = %g .. %g\n",
			strings.Repeat(" ", 8), fig.XLabel, xs[0], xs[len(xs)-1]); err != nil {
			return err
		}
	}
	// Legend.
	for si, s := range fig.Series {
		if _, err := fmt.Fprintf(w, "  %c = %s\n", marker(si), s.Label); err != nil {
			return err
		}
	}
	return nil
}

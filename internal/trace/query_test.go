package trace

import (
	"reflect"
	"strings"
	"testing"
)

// renderRows flattens a result for golden comparison.
func renderRows(res *Result) [][]string {
	out := make([][]string, len(res.Rows))
	for i, row := range res.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = FormatCell(v)
		}
		out[i] = cells
	}
	return out
}

// TestQueryGolden pins each query family over the fixed log: the exact
// rows, in the engine's deterministic order.
func TestQueryGolden(t *testing.T) {
	cases := []struct {
		name    string
		query   string
		columns []string
		rows    [][]string
	}{
		{
			name:    "events-overall",
			query:   "from=events;agg=count,hits,hitrate,p50lat,p99lat",
			columns: []string{"count", "hits", "hitrate", "p50lat", "p99lat"},
			rows:    [][]string{{"6", "4", "0.6667", "200", "5000"}},
		},
		{
			name:    "events-by-outcome",
			query:   "from=events;group=outcome;agg=count,meanlat",
			columns: []string{"outcome", "count", "meanlat"},
			rows: [][]string{
				{"hit", "4", "187.5000"},
				{"miss-cached", "2", "4500.0000"},
			},
		},
		{
			name:    "top-clips",
			query:   "from=events;group=clip;agg=count,hitrate;top=2",
			columns: []string{"clip", "count", "hitrate"},
			rows: [][]string{
				{"3", "3", "0.6667"},
				{"7", "2", "0.5000"},
			},
		},
		{
			name:    "events-filtered",
			query:   "from=events;where=client=c0,hit=true;agg=count,maxlat",
			columns: []string{"count", "maxlat"},
			rows:    [][]string{{"2", "200"}},
		},
		{
			name:    "events-ranged",
			query:   "from=events;where=ranged=true;agg=count",
			columns: []string{"count"},
			rows:    [][]string{{"2"}},
		},
		{
			name:    "sessions-overall",
			query:   "from=sessions;gap=10000;agg=count,requests,meanlen,hitrate,p50gap,p99gap",
			columns: []string{"count", "requests", "meanlen", "hitrate", "p50gap", "p99gap"},
			rows:    [][]string{{"3", "6", "2.0000", "0.6667", "2000", "3000"}},
		},
		{
			name:    "sessions-by-client",
			query:   "from=sessions;gap=10000;group=client;agg=count,meanlen,p50startup",
			columns: []string{"client", "count", "meanlen", "p50startup"},
			rows: [][]string{
				{"c0", "2", "2.0000", "150"},
				{"c1", "1", "2.0000", "100"},
			},
		},
		{
			name:    "sessions-minlen",
			query:   "from=sessions;gap=10000;where=minlen=2;agg=count,maxlen",
			columns: []string{"count", "maxlen"},
			rows:    [][]string{{"2", "3"}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := ParseQuery(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(fixedLog(), q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Columns, tc.columns) {
				t.Fatalf("columns = %v, want %v", res.Columns, tc.columns)
			}
			if got := renderRows(res); !reflect.DeepEqual(got, tc.rows) {
				t.Fatalf("rows = %v, want %v", got, tc.rows)
			}
		})
	}
}

func TestParseQueryRejects(t *testing.T) {
	for _, s := range []string{
		"",
		"from=events",              // no aggregate
		"from=elsewhere;agg=count", // bad scope
		"agg=count",                // no scope
		"from=events;agg=meanlen",  // session agg over events
		"from=sessions;agg=p99lat", // event agg over sessions
		"from=events;group=client;agg=count;gap=5", // gap outside sessions
		"from=events;where=minlen=3;agg=count",     // session filter over events
		"from=sessions;group=clip;agg=count",       // event group over sessions
		"from=events;agg=count;top=0",
		"from=events;agg=count;top=x",
		"from=events;agg=count;bogus=1",
		"from=events;agg=count;agg=hits", // duplicate clause
		"from=events;where=hit=maybe;agg=count",
		"from=events;where=clip=abc;agg=count",
		"from=events;agg=",
		"notaclause",
	} {
		if _, err := ParseQuery(s); err == nil {
			t.Errorf("ParseQuery(%q) accepted invalid query", s)
		}
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	for _, s := range []string{
		"from=events;agg=count",
		"from=events;where=client=c0,hit=true;group=clip;agg=count,hitrate;top=5",
		"from=sessions;where=minlen=2;group=client;agg=count,meanlen,p99gap;gap=10000",
	} {
		q, err := ParseQuery(s)
		if err != nil {
			t.Fatal(err)
		}
		if q.String() != s {
			t.Errorf("String() = %q, want %q", q.String(), s)
		}
	}
}

func FuzzParseQuery(f *testing.F) {
	f.Add("from=events;agg=count")
	f.Add("from=events;where=client=c0,hit=true;group=clip;agg=count,hitrate;top=5")
	f.Add("from=sessions;where=minlen=2;group=client;agg=count,meanlen,p99gap;gap=10000")
	f.Add("from=sessions;agg=p50startup,p99startup,meanstartup")
	f.Add("from=events;;agg=count")
	f.Add(strings.Repeat("from=events;", 30))
	f.Fuzz(func(t *testing.T, input string) {
		q, err := ParseQuery(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Anything accepted must round-trip and run without error.
		again, err := ParseQuery(q.String())
		if err != nil {
			t.Fatalf("re-parsing %q: %v", q.String(), err)
		}
		if !reflect.DeepEqual(again, q) {
			t.Fatalf("round trip changed query: %+v -> %+v", q, again)
		}
		if _, err := Run(fixedLog(), q); err != nil {
			t.Fatalf("accepted query failed to run: %v", err)
		}
	})
}

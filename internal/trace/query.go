package trace

// query.go is the engine's sybil-idiom query layer: a QuerySpec names a
// scope (raw events or sessionized), equality filters, an optional
// group-by, a list of aggregates and an optional top-k, in a compact
// semicolon grammar:
//
//	from=events;where=outcome=miss-cached,client=c0;group=clip;agg=count,p99lat;top=5
//	from=sessions;gap=30000000;group=client;agg=count,meanlen,hitrate,p99gap
//
// Parse rejects unknown keys, unknown aggregates and scope mismatches
// (session aggregates over events and vice versa), so a spec that parses
// always runs.

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"mediacache/internal/workload"
)

// QuerySpec is a parsed query. The zero value is not runnable; build specs
// with ParseQuery so scope checks have run.
type QuerySpec struct {
	// From is the scope: "events" or "sessions".
	From string
	// Where holds equality filters, in source order.
	Where []Filter
	// Group is the group-by key ("" = one global group).
	Group string
	// Aggs are the aggregate columns, in order.
	Aggs []string
	// Top keeps only the k rows with the largest first aggregate (0 = all).
	Top int
	// GapMicros is the sessionization idle gap (sessions scope only;
	// 0 = DefaultGapMicros).
	GapMicros int64
}

// Filter is one equality predicate of the where clause.
type Filter struct {
	Key   string
	Value string
}

// The grammar's vocabulary. Aggregates map to their scope; filters and
// group keys apply per scope as checked in ParseQuery.
var (
	eventFilterKeys   = map[string]bool{"client": true, "clip": true, "outcome": true, "policy": true, "hit": true, "ranged": true, "peer": true}
	sessionFilterKeys = map[string]bool{"client": true, "minlen": true}
	eventGroupKeys    = map[string]bool{"client": true, "clip": true, "outcome": true, "policy": true}
	sessionGroupKeys  = map[string]bool{"client": true}

	eventAggs = map[string]bool{
		"count": true, "hits": true, "hitrate": true,
		"meanlat": true, "p50lat": true, "p90lat": true, "p99lat": true, "maxlat": true,
	}
	sessionAggs = map[string]bool{
		"count": true, "requests": true, "hitrate": true,
		"meanlen": true, "p50len": true, "p99len": true, "maxlen": true,
		"p50gap": true, "p90gap": true, "p99gap": true,
		"meanstartup": true, "p50startup": true, "p99startup": true,
	}
)

// ParseQuery parses and scope-checks the grammar above.
func ParseQuery(s string) (QuerySpec, error) {
	q := QuerySpec{}
	if strings.TrimSpace(s) == "" {
		return q, fmt.Errorf("trace: empty query")
	}
	seen := map[string]bool{}
	for _, clause := range strings.Split(s, ";") {
		key, val, ok := strings.Cut(strings.TrimSpace(clause), "=")
		if !ok {
			return q, fmt.Errorf("trace: bad query clause %q (want key=value)", clause)
		}
		if seen[key] {
			return q, fmt.Errorf("trace: duplicate query clause %q", key)
		}
		seen[key] = true
		switch key {
		case "from":
			if val != "events" && val != "sessions" {
				return q, fmt.Errorf("trace: from=%q (want events or sessions)", val)
			}
			q.From = val
		case "where":
			for _, term := range strings.Split(val, ",") {
				fk, fv, ok := strings.Cut(term, "=")
				if !ok || fk == "" {
					return q, fmt.Errorf("trace: bad where term %q (want key=value)", term)
				}
				q.Where = append(q.Where, Filter{Key: fk, Value: fv})
			}
		case "group":
			q.Group = val
		case "agg":
			for _, a := range strings.Split(val, ",") {
				if a == "" {
					return q, fmt.Errorf("trace: empty aggregate in %q", val)
				}
				q.Aggs = append(q.Aggs, a)
			}
		case "top":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return q, fmt.Errorf("trace: top=%q (want a positive integer)", val)
			}
			q.Top = n
		case "gap":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 1 {
				return q, fmt.Errorf("trace: gap=%q (want positive microseconds)", val)
			}
			q.GapMicros = n
		default:
			return q, fmt.Errorf("trace: unknown query clause %q", key)
		}
	}
	if err := q.check(); err != nil {
		return q, err
	}
	return q, nil
}

// check enforces scope consistency; ParseQuery and Run both call it.
func (q QuerySpec) check() error {
	if q.From != "events" && q.From != "sessions" {
		return fmt.Errorf("trace: query needs from=events or from=sessions")
	}
	filterKeys, groupKeys, aggs := eventFilterKeys, eventGroupKeys, eventAggs
	if q.From == "sessions" {
		filterKeys, groupKeys, aggs = sessionFilterKeys, sessionGroupKeys, sessionAggs
	}
	for _, f := range q.Where {
		if !filterKeys[f.Key] {
			return fmt.Errorf("trace: filter %q not valid for from=%s", f.Key, q.From)
		}
		switch f.Key {
		case "hit", "ranged":
			if f.Value != "true" && f.Value != "false" {
				return fmt.Errorf("trace: filter %s=%q (want true or false)", f.Key, f.Value)
			}
		case "clip", "minlen":
			if n, err := strconv.Atoi(f.Value); err != nil || n < 0 {
				return fmt.Errorf("trace: filter %s=%q (want a non-negative integer)", f.Key, f.Value)
			}
		}
	}
	if q.Group != "" && !groupKeys[q.Group] {
		return fmt.Errorf("trace: group %q not valid for from=%s", q.Group, q.From)
	}
	if len(q.Aggs) == 0 {
		return fmt.Errorf("trace: query needs at least one aggregate")
	}
	for _, a := range q.Aggs {
		if !aggs[a] {
			return fmt.Errorf("trace: aggregate %q not valid for from=%s", a, q.From)
		}
	}
	if q.GapMicros != 0 && q.From != "sessions" {
		return fmt.Errorf("trace: gap applies only to from=sessions")
	}
	return nil
}

// String renders the spec back into the grammar; a parsed spec round-trips.
func (q QuerySpec) String() string {
	var parts []string
	parts = append(parts, "from="+q.From)
	if len(q.Where) > 0 {
		terms := make([]string, len(q.Where))
		for i, f := range q.Where {
			terms[i] = f.Key + "=" + f.Value
		}
		parts = append(parts, "where="+strings.Join(terms, ","))
	}
	if q.Group != "" {
		parts = append(parts, "group="+q.Group)
	}
	if len(q.Aggs) > 0 {
		parts = append(parts, "agg="+strings.Join(q.Aggs, ","))
	}
	if q.Top > 0 {
		parts = append(parts, "top="+strconv.Itoa(q.Top))
	}
	if q.GapMicros > 0 {
		parts = append(parts, "gap="+strconv.FormatInt(q.GapMicros, 10))
	}
	return strings.Join(parts, ";")
}

// Result is a query's output table. Rows align with Columns; cells are
// int64, float64 or string.
type Result struct {
	Columns []string
	Rows    [][]any
}

// Run executes the query over the log (the sybil pipeline: sessionize →
// filter → group → aggregate). Output row order is deterministic: by
// descending first aggregate when Top is set, else ascending group key.
func Run(events []Event, q QuerySpec) (*Result, error) {
	if err := q.check(); err != nil {
		return nil, err
	}
	if q.From == "events" {
		return runEvents(events, q)
	}
	return runSessions(Sessionize(events, q.GapMicros), q)
}

func runEvents(events []Event, q QuerySpec) (*Result, error) {
	var kept []Event
	for _, e := range events {
		if matchEvent(e, q.Where) {
			kept = append(kept, e)
		}
	}
	groups := map[string][]Event{}
	for _, e := range kept {
		groups[eventGroupKey(e, q.Group)] = append(groups[eventGroupKey(e, q.Group)], e)
	}
	res := newResult(q)
	for key, evs := range groups {
		row := []any{}
		if q.Group != "" {
			row = append(row, key)
		}
		for _, agg := range q.Aggs {
			row = append(row, eventAgg(evs, agg))
		}
		res.Rows = append(res.Rows, row)
	}
	res.finish(q)
	return res, nil
}

func runSessions(sessions []Session, q QuerySpec) (*Result, error) {
	var kept []Session
	for _, s := range sessions {
		if matchSession(&s, q.Where) {
			kept = append(kept, s)
		}
	}
	groups := map[string][]Session{}
	for _, s := range kept {
		key := ""
		if q.Group == "client" {
			key = s.Client
		}
		groups[key] = append(groups[key], s)
	}
	res := newResult(q)
	for key, ss := range groups {
		row := []any{}
		if q.Group != "" {
			row = append(row, key)
		}
		for _, agg := range q.Aggs {
			row = append(row, sessionAgg(ss, agg))
		}
		res.Rows = append(res.Rows, row)
	}
	res.finish(q)
	return res, nil
}

func newResult(q QuerySpec) *Result {
	res := &Result{}
	if q.Group != "" {
		res.Columns = append(res.Columns, q.Group)
	}
	res.Columns = append(res.Columns, q.Aggs...)
	return res
}

// finish orders rows deterministically and applies top-k.
func (r *Result) finish(q QuerySpec) {
	keyed := q.Group != ""
	if q.Top > 0 {
		first := 0
		if keyed {
			first = 1
		}
		sort.SliceStable(r.Rows, func(i, j int) bool {
			a, b := cellFloat(r.Rows[i][first]), cellFloat(r.Rows[j][first])
			if a != b {
				return a > b
			}
			if keyed {
				return groupLess(r.Rows[i][0], r.Rows[j][0])
			}
			return false
		})
		if len(r.Rows) > q.Top {
			r.Rows = r.Rows[:q.Top]
		}
		return
	}
	if keyed {
		sort.SliceStable(r.Rows, func(i, j int) bool { return groupLess(r.Rows[i][0], r.Rows[j][0]) })
	}
}

// groupLess orders group keys numerically when both parse as integers
// (clip IDs), lexically otherwise.
func groupLess(a, b any) bool {
	as, bs := a.(string), b.(string)
	ai, errA := strconv.Atoi(as)
	bi, errB := strconv.Atoi(bs)
	if errA == nil && errB == nil {
		return ai < bi
	}
	return as < bs
}

func cellFloat(v any) float64 {
	switch x := v.(type) {
	case int64:
		return float64(x)
	case float64:
		return x
	default:
		return math.NaN()
	}
}

func matchEvent(e Event, where []Filter) bool {
	for _, f := range where {
		switch f.Key {
		case "client":
			if e.Client != f.Value {
				return false
			}
		case "clip":
			if strconv.Itoa(int(e.Clip)) != f.Value {
				return false
			}
		case "outcome":
			if e.Outcome != f.Value {
				return false
			}
		case "policy":
			if e.Policy != f.Value {
				return false
			}
		case "peer":
			if e.Peer != f.Value {
				return false
			}
		case "hit":
			if strconv.FormatBool(e.Hit) != f.Value {
				return false
			}
		case "ranged":
			if strconv.FormatBool(Ranged(e)) != f.Value {
				return false
			}
		}
	}
	return true
}

func matchSession(s *Session, where []Filter) bool {
	for _, f := range where {
		switch f.Key {
		case "client":
			if s.Client != f.Value {
				return false
			}
		case "minlen":
			n, _ := strconv.Atoi(f.Value)
			if s.Len() < n {
				return false
			}
		}
	}
	return true
}

func eventGroupKey(e Event, group string) string {
	switch group {
	case "client":
		return e.Client
	case "clip":
		return strconv.Itoa(int(e.Clip))
	case "outcome":
		return e.Outcome
	case "policy":
		return e.Policy
	default:
		return ""
	}
}

func eventAgg(evs []Event, agg string) any {
	switch agg {
	case "count":
		return int64(len(evs))
	case "hits":
		n := int64(0)
		for _, e := range evs {
			if e.Hit {
				n++
			}
		}
		return n
	case "hitrate":
		if len(evs) == 0 {
			return float64(0)
		}
		return float64(eventAgg(evs, "hits").(int64)) / float64(len(evs))
	case "meanlat", "p50lat", "p90lat", "p99lat", "maxlat":
		lats := make([]int64, len(evs))
		for i, e := range evs {
			lats[i] = e.LatencyMicros
		}
		return latStat(lats, agg)
	default:
		return nil
	}
}

func latStat(lats []int64, agg string) any {
	switch agg {
	case "meanlat", "meanstartup":
		if len(lats) == 0 {
			return float64(0)
		}
		sum := int64(0)
		for _, l := range lats {
			sum += l
		}
		return float64(sum) / float64(len(lats))
	case "maxlat":
		m := int64(0)
		for _, l := range lats {
			if l > m {
				m = l
			}
		}
		return m
	case "p50lat", "p50startup":
		return quantile(lats, 0.50)
	case "p90lat":
		return quantile(lats, 0.90)
	case "p99lat", "p99startup":
		return quantile(lats, 0.99)
	default:
		return nil
	}
}

func sessionAgg(ss []Session, agg string) any {
	switch agg {
	case "count":
		return int64(len(ss))
	case "requests":
		n := int64(0)
		for i := range ss {
			n += int64(ss[i].Len())
		}
		return n
	case "hitrate":
		hits, total := 0, 0
		for i := range ss {
			hits += ss[i].Hits()
			total += ss[i].Len()
		}
		if total == 0 {
			return float64(0)
		}
		return float64(hits) / float64(total)
	case "meanlen":
		if len(ss) == 0 {
			return float64(0)
		}
		return float64(sessionAgg(ss, "requests").(int64)) / float64(len(ss))
	case "p50len", "p99len", "maxlen":
		lens := make([]int64, len(ss))
		for i := range ss {
			lens[i] = int64(ss[i].Len())
		}
		if agg == "maxlen" {
			return latStat(lens, "maxlat")
		}
		if agg == "p50len" {
			return quantile(lens, 0.50)
		}
		return quantile(lens, 0.99)
	case "p50gap", "p90gap", "p99gap":
		var gaps []int64
		for i := range ss {
			gaps = ss[i].InterArrivals(gaps)
		}
		switch agg {
		case "p50gap":
			return quantile(gaps, 0.50)
		case "p90gap":
			return quantile(gaps, 0.90)
		default:
			return quantile(gaps, 0.99)
		}
	case "meanstartup", "p50startup", "p99startup":
		// Startup latency: the first request of each session, the moment the
		// paper's latency model charges the display wait.
		starts := make([]int64, len(ss))
		for i := range ss {
			starts[i] = ss[i].Events[0].LatencyMicros
		}
		return latStat(starts, agg)
	default:
		return nil
	}
}

// quantile is the exact nearest-rank quantile of unsorted samples, the
// same estimator loadgen reports; 0 when empty.
func quantile(samples []int64, q float64) int64 {
	return workload.FitQuantile(samples, q)
}

// FormatCell renders one result cell for tables and CSV: integers plainly,
// floats with four decimals.
func FormatCell(v any) string {
	switch x := v.(type) {
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'f', 4, 64)
	case string:
		return x
	default:
		return fmt.Sprintf("%v", x)
	}
}

package trace

import (
	"sort"
)

// DefaultGapMicros is the idle-gap threshold separating two sessions of
// one client when the query does not name one: 30 virtual seconds, far
// above any think time this repo's generators emit and far below their
// inter-session gaps.
const DefaultGapMicros = 30_000_000

// Session is one client's burst of consecutive requests: every
// inter-arrival inside it is at most the sessionizer's idle gap.
type Session struct {
	// Client is the requesting client ("" when the log carried no IDs).
	Client string
	// Events are the session's requests in arrival order.
	Events []Event
}

// Len returns the session length in requests.
func (s *Session) Len() int { return len(s.Events) }

// Start and End bound the session on the log's clock.
func (s *Session) Start() int64 { return Time(s.Events[0]) }
func (s *Session) End() int64   { return Time(s.Events[len(s.Events)-1]) }

// Hits counts the session's cache hits.
func (s *Session) Hits() int {
	n := 0
	for _, e := range s.Events {
		if e.Hit {
			n++
		}
	}
	return n
}

// HitRate is the session's hit fraction.
func (s *Session) HitRate() float64 {
	if len(s.Events) == 0 {
		return 0
	}
	return float64(s.Hits()) / float64(len(s.Events))
}

// InterArrivals appends the session's within-session inter-arrival times
// (µs) to dst; a session of n requests contributes n-1 samples.
func (s *Session) InterArrivals(dst []int64) []int64 {
	for i := 1; i < len(s.Events); i++ {
		dst = append(dst, Time(s.Events[i])-Time(s.Events[i-1]))
	}
	return dst
}

// Sessionize groups events per client and splits each client's stream
// where consecutive arrivals are more than gapMicros apart (the sybil
// idiom's first stage). Events are ordered by arrival within each client
// (stable for ties, preserving log order); sessions are returned sorted by
// start time, then client, so output is deterministic. gapMicros <= 0
// selects DefaultGapMicros.
func Sessionize(events []Event, gapMicros int64) []Session {
	if gapMicros <= 0 {
		gapMicros = DefaultGapMicros
	}
	byClient := map[string][]Event{}
	for _, e := range events {
		byClient[e.Client] = append(byClient[e.Client], e)
	}
	var sessions []Session
	for client, evs := range byClient {
		sort.SliceStable(evs, func(i, j int) bool { return Time(evs[i]) < Time(evs[j]) })
		start := 0
		for i := 1; i <= len(evs); i++ {
			if i == len(evs) || Time(evs[i])-Time(evs[i-1]) > gapMicros {
				sessions = append(sessions, Session{Client: client, Events: evs[start:i]})
				start = i
			}
		}
	}
	sort.Slice(sessions, func(i, j int) bool {
		if sessions[i].Start() != sessions[j].Start() {
			return sessions[i].Start() < sessions[j].Start()
		}
		return sessions[i].Client < sessions[j].Client
	})
	return sessions
}

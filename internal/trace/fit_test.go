package trace

import (
	"math"
	"testing"

	"mediacache/internal/media"
	"mediacache/internal/workload"
)

// testLRU is a minimal count-capacity LRU used to stamp hit/miss outcomes
// onto synthesized logs without dragging cache policies into this package.
type testLRU struct {
	cap   int
	order []media.ClipID
}

func (l *testLRU) request(id media.ClipID) bool {
	for i, r := range l.order {
		if r == id {
			l.order = append(append(l.order[:i:i], l.order[i+1:]...), id)
			return true
		}
	}
	l.order = append(l.order, id)
	if len(l.order) > l.cap {
		l.order = l.order[1:]
	}
	return false
}

// synthesize replays a spec on the virtual clock and stamps outcomes from
// a fresh LRU — a fully deterministic measured log.
func synthesize(t *testing.T, spec workload.FitSpec, repo *media.Repository, seed uint64, n, lruCap int) []Event {
	t.Helper()
	src, err := workload.NewSessionSource(spec, repo, seed)
	if err != nil {
		t.Fatal(err)
	}
	lru := &testLRU{cap: lruCap}
	events := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		tr, _ := src.NextTimed()
		e := Event{
			Tick:   tr.ArrivalMicros,
			Client: tr.Client,
			Clip:   tr.Clip,
			Status: 200,
		}
		if repo != nil {
			e.SizeBytes = int64(repo.Clip(tr.Clip).Size)
		}
		if tr.Ranged {
			e.StartBytes = int64(tr.Start)
			e.LengthBytes = int64(tr.Length)
		}
		if lru.request(tr.Clip) {
			e.Hit = true
			e.Outcome = "hit"
			e.LatencyMicros = 200
		} else {
			e.Outcome = "miss-cached"
			e.LatencyMicros = 8000
		}
		events = append(events, e)
	}
	return events
}

// sessionStats reduces a log to the round-trip comparison metrics: mean
// per-session hit rate, and inter-arrival p50/p99.
func sessionStats(events []Event, gapMicros int64) (hitRate float64, p50, p99 int64) {
	sessions := Sessionize(events, gapMicros)
	var gaps []int64
	hits, total := 0, 0
	for i := range sessions {
		gaps = sessions[i].InterArrivals(gaps)
		hits += sessions[i].Hits()
		total += sessions[i].Len()
	}
	return float64(hits) / float64(total), workload.FitQuantile(gaps, 0.5), workload.FitQuantile(gaps, 0.99)
}

// TestFitRoundTrip is the loop-closing test (ISSUE 10 acceptance): a known
// spec generates a measured log; Fit recovers the generating parameters
// within tolerance; replaying the fitted spec reproduces the log's
// sessionized statistics. Everything runs on the virtual clock, so the
// test is exactly reproducible.
func TestFitRoundTrip(t *testing.T) {
	repo := media.PaperRepository()
	truth := workload.FitSpec{
		Clips: 200, Theta: 0.27, Clients: 8, Sess: 10,
		ThinkMicros: 2000, GapMicros: 500_000,
		RangedFrac: 0.5, PrefixFrac: 0.75, LengthFrac: 0.4,
	}
	const (
		n      = 40000
		lruCap = 40
		gap    = 50_000 // sessionizer threshold: 25x think, 1/10 gap
	)
	measured := synthesize(t, truth, repo, 1, n, lruCap)

	got, err := Fit(measured, gap)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fitted: %s", got)

	// Parameter recovery. Tolerances are the documented DESIGN §18 bounds:
	// the estimators see a finite, threshold-truncated sample.
	if got.Clips != truth.Clips {
		t.Errorf("clips = %d, want %d (every identity should appear in %d draws)", got.Clips, truth.Clips, n)
	}
	if math.Abs(got.Theta-truth.Theta) > 0.12 {
		t.Errorf("theta = %v, want %v ± 0.12", got.Theta, truth.Theta)
	}
	if got.Clients != truth.Clients {
		t.Errorf("clients = %d, want %d", got.Clients, truth.Clients)
	}
	if rel(got.Sess, truth.Sess) > 0.20 {
		t.Errorf("sess = %v, want %v ± 20%%", got.Sess, truth.Sess)
	}
	if rel(float64(got.ThinkMicros), float64(truth.ThinkMicros)) > 0.20 {
		t.Errorf("think = %d, want %d ± 20%%", got.ThinkMicros, truth.ThinkMicros)
	}
	if rel(float64(got.GapMicros), float64(truth.GapMicros)) > 0.20 {
		t.Errorf("gap = %d, want %d ± 20%%", got.GapMicros, truth.GapMicros)
	}
	if math.Abs(got.RangedFrac-truth.RangedFrac) > 0.03 {
		t.Errorf("ranged = %v, want %v ± 0.03", got.RangedFrac, truth.RangedFrac)
	}
	if math.Abs(got.PrefixFrac-truth.PrefixFrac) > 0.05 {
		t.Errorf("prefix = %v, want %v ± 0.05", got.PrefixFrac, truth.PrefixFrac)
	}
	if math.Abs(got.LengthFrac-truth.LengthFrac) > 0.08 {
		t.Errorf("lenfrac = %v, want %v ± 0.08", got.LengthFrac, truth.LengthFrac)
	}

	// Replay fidelity: drive the fitted spec (fresh seed) through the same
	// cache and compare sessionized statistics against the measured log.
	replayed := synthesize(t, got, repo, 2, n, lruCap)
	mHR, mP50, mP99 := sessionStats(measured, gap)
	rHR, rP50, rP99 := sessionStats(replayed, gap)
	t.Logf("measured: hitrate=%.4f p50=%dµs p99=%dµs", mHR, mP50, mP99)
	t.Logf("replayed: hitrate=%.4f p50=%dµs p99=%dµs", rHR, rP50, rP99)
	if math.Abs(mHR-rHR) > 0.05 {
		t.Errorf("per-session hit rate: measured %.4f, replayed %.4f (tolerance 0.05)", mHR, rHR)
	}
	if rel(float64(rP50), float64(mP50)) > 0.25 {
		t.Errorf("inter-arrival p50: measured %d, replayed %d (tolerance 25%%)", mP50, rP50)
	}
	if rel(float64(rP99), float64(mP99)) > 0.35 {
		t.Errorf("inter-arrival p99: measured %d, replayed %d (tolerance 35%%)", mP99, rP99)
	}
}

// TestFitUnrangedLog: a log with no byte ranges fits to a rangeless spec.
func TestFitUnrangedLog(t *testing.T) {
	truth := workload.FitSpec{
		Clips: 100, Theta: 0.3, Clients: 4, Sess: 6,
		ThinkMicros: 1000, GapMicros: 200_000,
	}
	events := synthesize(t, truth, nil, 3, 10000, 20)
	got, err := Fit(events, 25_000)
	if err != nil {
		t.Fatal(err)
	}
	if got.RangedFrac != 0 || got.PrefixFrac != 0 || got.LengthFrac != 0 {
		t.Errorf("unranged log fitted range terms: %+v", got)
	}
	if got.Clients != truth.Clients {
		t.Errorf("clients = %d, want %d", got.Clients, truth.Clients)
	}
}

func TestFitRejectsDegenerate(t *testing.T) {
	if _, err := Fit(nil, 0); err == nil {
		t.Error("empty log should fail")
	}
	if _, err := Fit([]Event{{Clip: 0}}, 0); err == nil {
		t.Error("clip id 0 should fail")
	}
	// Two distinct clips cannot support a Zipf fit.
	if _, err := Fit([]Event{{Clip: 1, Tick: 1}, {Clip: 2, Tick: 2}}, 0); err == nil {
		t.Error("two-clip log should fail the zipf fit")
	}
}

func rel(got, want float64) float64 {
	return math.Abs(got-want) / want
}

// Package trace is the sessionized analytics engine behind cmd/traceql
// (ISSUE 10): it ingests recorded request logs — the NDJSON access log of
// `cacheserver -reqlog` / `loadgen -reqlog`, or a workload trace file —
// sessionizes them per client, and answers filter/group-by/aggregate
// queries in the sybil idiom. Fit closes the measure→model→replay loop by
// distilling a log into a workload.FitSpec the generators can replay.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"mediacache/internal/api"
	"mediacache/internal/workload"
)

// Event is one recorded request: exactly the reqlog wire type, so NDJSON
// logs decode straight into the engine.
type Event = api.RequestLogEntry

// Time returns the event's position on the log's clock: the wall-clock
// arrival when the recorder stamped one, else the arrival tick. Both are
// microseconds for every recorder in this repo (cacheserver stamps wall
// time; trace v2 ticks are the source's virtual arrival micros), so gaps
// and inter-arrivals are comparable across log kinds.
func Time(e Event) int64 {
	if e.WallMicros != 0 {
		return e.WallMicros
	}
	return e.Tick
}

// Ranged reports whether the event referenced a byte range rather than the
// whole clip (the trace v2 convention: zero length = whole clip).
func Ranged(e Event) bool { return e.LengthBytes > 0 }

// ReadNDJSON decodes a reqlog stream: one JSON object per line, blank
// lines skipped. A malformed line fails with its line number rather than
// being dropped silently.
func ReadNDJSON(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("trace: reqlog line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading reqlog: %w", err)
	}
	return events, nil
}

// FromTrace converts a workload trace (either schema version) into events.
// A v1 trace yields tickless, clientless events — still aggregatable,
// sessionizable only as one anonymous stream. Outcome fields stay zero:
// a trace records references, not cache results.
func FromTrace(t *workload.Trace) []Event {
	events := make([]Event, len(t.Requests))
	for i, id := range t.Requests {
		e := Event{Clip: id, Tick: int64(i)}
		if t.Clients != nil {
			e.Client = t.Clients[i]
		}
		if t.Ticks != nil {
			e.Tick = t.Ticks[i]
		}
		if t.RangeLens != nil && t.RangeLens[i] > 0 {
			e.LengthBytes = int64(t.RangeLens[i])
			if t.RangeStarts != nil {
				e.StartBytes = int64(t.RangeStarts[i])
			}
		}
		events[i] = e
	}
	return events
}

package trace

// fit.go distills a measured request log into a replayable workload.FitSpec
// — the model step of the measure→model→replay loop. The estimators are
// documented in DESIGN §18: Zipf theta by log-log rank/frequency
// regression (zipf.EstimateMean), session length by truncation-corrected
// mean (geometric MLE), think time by median (robust exponential fit), gap
// time by memoryless-shifted mean, range biases by empirical fractions.

import (
	"fmt"
	"math"

	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

// Fit estimates the generating workload of a recorded log, sessionizing
// with the given idle gap (<= 0 selects DefaultGapMicros). The log must
// reference at least three distinct clips for the Zipf fit to be
// meaningful; smaller logs are rejected rather than guessed at.
//
// Caveats (see DESIGN §18): the mean inter-session gap is observable only
// for clients with two or more sessions — a log whose clients each ran one
// session reports the sessionization threshold as the gap estimate; and
// the range-length bias needs clip sizes (reqlog SizeBytes, or inferred
// from observed range extents), falling back to 0.5 when none are known.
func Fit(events []Event, gapMicros int64) (workload.FitSpec, error) {
	if gapMicros <= 0 {
		gapMicros = DefaultGapMicros
	}
	if len(events) == 0 {
		return workload.FitSpec{}, fmt.Errorf("trace: cannot fit an empty log")
	}

	// Catalog size and popularity skew.
	maxClip := 0
	for _, e := range events {
		if int(e.Clip) > maxClip {
			maxClip = int(e.Clip)
		}
		if e.Clip < 1 {
			return workload.FitSpec{}, fmt.Errorf("trace: event references clip %d (ids start at 1)", e.Clip)
		}
	}
	counts := make([]int, maxClip)
	for _, e := range events {
		counts[e.Clip-1]++
	}
	theta, err := zipf.EstimateMean(counts)
	if err != nil {
		return workload.FitSpec{}, fmt.Errorf("trace: fitting zipf exponent: %w", err)
	}

	// Session shape.
	sessions := Sessionize(events, gapMicros)
	clients := map[string]bool{}
	for i := range sessions {
		clients[sessions[i].Client] = true
	}
	meanSess := float64(len(events)) / float64(len(sessions))
	if meanSess < 1 {
		meanSess = 1
	}

	// Think: exponential fit to within-session inter-arrivals. True gaps
	// shorter than the threshold hide inside sessions and contaminate the
	// large tail of these samples, so fit the median (robust to a small
	// upper-tail contamination) rather than the mean: an exponential's
	// median is mean·ln 2.
	var thinks []int64
	for i := range sessions {
		thinks = sessions[i].InterArrivals(thinks)
	}
	think := int64(1)
	if len(thinks) > 0 {
		think = int64(float64(workload.FitQuantile(thinks, 0.5)) / math.Ln2)
		if think < 1 {
			think = 1
		}
	}

	// Gap: idle time between a client's consecutive sessions. The
	// sessionizer only reveals gaps longer than the threshold, but an
	// exponential is memoryless — gap | gap > t is t plus a fresh
	// exponential of the same mean — so mean(observed − threshold) is an
	// unbiased estimate despite the truncation. Sessions are start-ordered;
	// walk them per client. Clients with a single session contribute
	// nothing; with no samples at all the threshold itself is the only
	// defensible estimate.
	lastEnd := map[string]int64{}
	var gapSum, gapN int64
	for i := range sessions {
		s := &sessions[i]
		if end, seen := lastEnd[s.Client]; seen {
			gapSum += s.Start() - end - gapMicros
			gapN++
		}
		lastEnd[s.Client] = s.End()
	}
	gap := gapMicros
	if gapN > 0 {
		gap = gapSum / gapN
		if gap < 1 {
			gap = 1
		}
		// Sub-threshold gaps merged adjacent true sessions, inflating the
		// observed session length by 1/P(gap > t); undo that bias.
		meanSess *= math.Exp(-float64(gapMicros) / float64(gap))
		if meanSess < 1 {
			meanSess = 1
		}
	}

	spec := workload.FitSpec{
		Clips:       maxClip,
		Theta:       theta,
		Clients:     len(clients),
		Sess:        meanSess,
		ThinkMicros: think,
		GapMicros:   gap,
	}
	fitRanges(events, &spec)
	if err := spec.Validate(); err != nil {
		return workload.FitSpec{}, fmt.Errorf("trace: fitted spec invalid: %w", err)
	}
	return spec, nil
}

// fitRanges estimates the range-bias terms: the ranged fraction, the
// prefix (start-at-zero) fraction, and the mean covered clip fraction.
// Clip sizes come from reqlog SizeBytes when stamped, else from the
// largest observed extent per clip.
func fitRanges(events []Event, spec *workload.FitSpec) {
	size := map[int]int64{}
	for _, e := range events {
		id := int(e.Clip)
		if e.SizeBytes > size[id] {
			size[id] = e.SizeBytes
		}
		if ext := e.StartBytes + e.LengthBytes; ext > size[id] {
			size[id] = ext
		}
	}
	var ranged, prefix int
	var fracSum float64
	var fracN int
	for _, e := range events {
		if !Ranged(e) {
			continue
		}
		ranged++
		if e.StartBytes == 0 {
			prefix++
		}
		if sz := size[int(e.Clip)]; sz > 0 {
			fracSum += float64(e.LengthBytes) / float64(sz)
			fracN++
		}
	}
	if ranged == 0 {
		return
	}
	spec.RangedFrac = float64(ranged) / float64(len(events))
	spec.PrefixFrac = float64(prefix) / float64(ranged)
	// The replay draw is uniform on [0, 2·LengthFrac]·size, so the sample
	// mean is the moment estimator; clamp to the legal range.
	spec.LengthFrac = 0.5
	if fracN > 0 {
		spec.LengthFrac = fracSum / float64(fracN)
		if spec.LengthFrac > 1 {
			spec.LengthFrac = 1
		}
	}
}

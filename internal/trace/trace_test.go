package trace

import (
	"strings"
	"testing"

	"mediacache/internal/media"
	"mediacache/internal/workload"
)

// fixedLog is a small hand-written log exercised by the golden aggregation
// tests: two clients, three sessions under a 10ms gap, mixed outcomes.
// Times are microseconds.
func fixedLog() []Event {
	return []Event{
		// c0 session 1: three requests, one hit.
		{Tick: 1, WallMicros: 1_000, Client: "c0", Clip: 3, Outcome: "miss-cached", Status: 200, LatencyMicros: 5000, Policy: "lru"},
		{Tick: 2, WallMicros: 3_000, Client: "c0", Clip: 3, Hit: true, Outcome: "hit", Status: 200, LatencyMicros: 200, Policy: "lru"},
		{Tick: 3, WallMicros: 6_000, Client: "c0", Clip: 7, Outcome: "miss-cached", Status: 200, LatencyMicros: 4000, Policy: "lru",
			SizeBytes: 1000, StartBytes: 0, LengthBytes: 500},
		// c1 session: two requests, both hits.
		{Tick: 4, WallMicros: 2_000, Client: "c1", Clip: 3, Hit: true, Outcome: "hit", Status: 200, LatencyMicros: 100, Policy: "lru"},
		{Tick: 5, WallMicros: 4_000, Client: "c1", Clip: 5, Hit: true, Outcome: "hit", Status: 200, LatencyMicros: 300, Policy: "lru"},
		// c0 session 2 (after a 20ms idle gap): one request.
		{Tick: 6, WallMicros: 26_000, Client: "c0", Clip: 7, Hit: true, Outcome: "hit", Status: 200, LatencyMicros: 150, Policy: "lru",
			SizeBytes: 1000, StartBytes: 200, LengthBytes: 100},
	}
}

func TestSessionize(t *testing.T) {
	sessions := Sessionize(fixedLog(), 10_000)
	if len(sessions) != 3 {
		t.Fatalf("got %d sessions, want 3", len(sessions))
	}
	// Sorted by start time: c0@1000 (3 events), c1@2000 (2), c0@26000 (1).
	if sessions[0].Client != "c0" || sessions[0].Len() != 3 || sessions[0].Start() != 1000 || sessions[0].End() != 6000 {
		t.Errorf("session 0 = %s/%d [%d, %d]", sessions[0].Client, sessions[0].Len(), sessions[0].Start(), sessions[0].End())
	}
	if sessions[1].Client != "c1" || sessions[1].Len() != 2 {
		t.Errorf("session 1 = %s/%d", sessions[1].Client, sessions[1].Len())
	}
	if sessions[2].Client != "c0" || sessions[2].Len() != 1 {
		t.Errorf("session 2 = %s/%d", sessions[2].Client, sessions[2].Len())
	}
	if hr := sessions[0].HitRate(); hr < 0.33 || hr > 0.34 {
		t.Errorf("session 0 hit rate = %v", hr)
	}
	gaps := sessions[0].InterArrivals(nil)
	if len(gaps) != 2 || gaps[0] != 2000 || gaps[1] != 3000 {
		t.Errorf("session 0 inter-arrivals = %v", gaps)
	}
}

func TestSessionizeDefaultsAndAnonymous(t *testing.T) {
	// Clientless v1-style events sessionize as one anonymous stream.
	events := []Event{{Tick: 0, Clip: 1}, {Tick: 1, Clip: 2}, {Tick: 2, Clip: 3}}
	sessions := Sessionize(events, 0)
	if len(sessions) != 1 || sessions[0].Client != "" || sessions[0].Len() != 3 {
		t.Fatalf("anonymous sessions = %+v", sessions)
	}
}

func TestReadNDJSON(t *testing.T) {
	in := `{"tick":1,"wallMicros":500,"client":"c0","clip":3,"outcome":"hit","hit":true,"status":200,"latencyMicros":120}

{"tick":2,"clip":7,"outcome":"miss-cached","status":200,"latencyMicros":9000,"lengthBytes":4096}
`
	events, err := ReadNDJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Client != "c0" || !events[0].Hit || Time(events[0]) != 500 {
		t.Errorf("event 0 = %+v", events[0])
	}
	if Ranged(events[0]) {
		t.Error("event 0 should be whole-clip")
	}
	if !Ranged(events[1]) || Time(events[1]) != 2 {
		t.Errorf("event 1 = %+v", events[1])
	}
	if _, err := ReadNDJSON(strings.NewReader("{bogus\n")); err == nil {
		t.Fatal("malformed line should fail")
	} else if !strings.Contains(err.Error(), "line 1") {
		t.Errorf("error should carry the line number: %v", err)
	}
}

func TestFromTrace(t *testing.T) {
	v1 := &workload.Trace{Name: "v1", NumClips: 5, Requests: []media.ClipID{3, 1}}
	events := FromTrace(v1)
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Clip != 3 || events[0].Tick != 0 || events[1].Tick != 1 {
		t.Errorf("v1 events = %+v", events)
	}
	v2 := &workload.Trace{
		Name:        "v2",
		NumClips:    5,
		Requests:    []media.ClipID{3, 1},
		Clients:     []string{"a", "b"},
		Ticks:       []int64{100, 900},
		RangeStarts: []media.Bytes{0, 64},
		RangeLens:   []media.Bytes{0, 128},
	}
	events = FromTrace(v2)
	if events[0].Client != "a" || events[0].Tick != 100 || Ranged(events[0]) {
		t.Errorf("v2 event 0 = %+v", events[0])
	}
	if !Ranged(events[1]) || events[1].StartBytes != 64 || events[1].LengthBytes != 128 {
		t.Errorf("v2 event 1 = %+v", events[1])
	}
}

package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Total requests.")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("in_flight", "In-flight requests.")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestRegisterIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "help")
	b := r.Counter("c_total", "help")
	if a != b {
		t.Fatal("identical registration must return the same counter")
	}
	// A second label set joins the family.
	r.Counter("c_total", "help", Label{"route", "/x"})
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting kind must panic")
		}
	}()
	r.Gauge("c_total", "help")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 20} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 20.65; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

// TestExpositionGolden pins the exact text exposition bytes for a fixed
// registry: family grouping, HELP/TYPE headers, label rendering, cumulative
// histogram buckets and name-sorted output.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	hits := r.Counter("cache_hits_total", "Requests serviced from cache.")
	hits.Add(3)
	r.Gauge("queue_depth", "Unclaimed sweep cells.").Set(2)
	r.GaugeFunc("capacity_bytes", "Cache capacity.", func() float64 { return 1024 })
	for _, route := range []string{"/v1/stats", "/v1/clips/{id}"} {
		h := r.Histogram("http_request_seconds", "Request latency.",
			[]float64{0.5, 2.5}, Label{"route", route})
		h.Observe(0.25)
		if route == "/v1/stats" {
			h.Observe(3)
		}
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP cache_hits_total Requests serviced from cache.
# TYPE cache_hits_total counter
cache_hits_total 3
# HELP capacity_bytes Cache capacity.
# TYPE capacity_bytes gauge
capacity_bytes 1024
# HELP http_request_seconds Request latency.
# TYPE http_request_seconds histogram
http_request_seconds_bucket{route="/v1/stats",le="0.5"} 1
http_request_seconds_bucket{route="/v1/stats",le="2.5"} 1
http_request_seconds_bucket{route="/v1/stats",le="+Inf"} 2
http_request_seconds_sum{route="/v1/stats"} 3.25
http_request_seconds_count{route="/v1/stats"} 2
http_request_seconds_bucket{route="/v1/clips/{id}",le="0.5"} 1
http_request_seconds_bucket{route="/v1/clips/{id}",le="2.5"} 1
http_request_seconds_bucket{route="/v1/clips/{id}",le="+Inf"} 1
http_request_seconds_sum{route="/v1/clips/{id}"} 0.25
http_request_seconds_count{route="/v1/clips/{id}"} 1
# HELP queue_depth Unclaimed sweep cells.
# TYPE queue_depth gauge
queue_depth 2
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestEscapingGolden pins the Prometheus 0.0.4 escaping rules: in label
// values backslash, double quote and line feed are escaped (and nothing
// else — tabs and non-ASCII pass through verbatim); in HELP text only
// backslash and line feed are.
func TestEscapingGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("files_total", `Paths under C:\cache ("hot" tier).`+"\nSecond line.",
		Label{"path", `C:\media\clips`}).Add(1)
	r.Counter("odd_total", "Values with every special.",
		Label{"v", "back\\slash \"quoted\"\nnewline\ttab é"}).Add(2)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP files_total Paths under C:\\cache ("hot" tier).\nSecond line.
# TYPE files_total counter
files_total{path="C:\\media\\clips"} 1
# HELP odd_total Values with every special.
# TYPE odd_total counter
odd_total{v="back\\slash \"quoted\"\nnewline` + "\ttab é" + `"} 2
`
	if b.String() != want {
		t.Errorf("escaping mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestHistogramRejectsUnsortedBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted buckets must panic")
		}
	}()
	NewRegistry().Histogram("h", "help", []float64{1, 1})
}

// TestConcurrentUpdates exercises the lock-free update paths under the race
// detector.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	h := r.Histogram("h", "help", []float64{1, 2, 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 5))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: counter=%d histogram=%d", c.Value(), h.Count())
	}
}

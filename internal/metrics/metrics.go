// Package metrics is a dependency-free, allocation-conscious metrics
// registry: counters, gauges and fixed-bucket histograms with Prometheus
// text-exposition output (the 0.0.4 format every scraper understands).
//
// The package exists because the paper's entire argument rests on measured
// counters — hit rate, byte hit rate, evictions — and both the long-running
// cacheserver and the batch experiments CLI need to report them through one
// code path. It deliberately implements the minimal surface the repository
// needs rather than binding a client library: instruments are lock-free
// atomics on the update path (a counter increment is one atomic add, a
// histogram observation is two), and the registry mutex is only taken at
// registration and exposition time.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to an instrument. Instruments
// sharing a name but differing in labels form a family and are exposed
// under one HELP/TYPE header.
type Label struct {
	Name  string
	Value string
}

// instrument is the exposition-time view of a registered metric.
type instrument interface {
	// write appends the sample lines (without HELP/TYPE headers) for this
	// instrument to b. name and labels are the registered identity.
	write(b *strings.Builder, name, labels string)
	// kind returns the TYPE keyword: "counter", "gauge" or "histogram".
	kind() string
}

// entry is one registered instrument plus its identity.
type entry struct {
	name   string
	labels string // pre-rendered {k="v",...} or ""
	help   string
	inst   instrument
}

// Registry holds named instruments and renders them in Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	entries []entry
	index   map[string]int // name+labels -> entries index
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]int)}
}

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format 0.0.4: backslash, double quote and line feed become
// \\, \" and \n. Everything else — including tabs and non-ASCII — passes
// through verbatim, which is why strconv.Quote (whose \t and \uXXXX
// escapes scrapers reject) cannot be used here.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text per the same format: only backslash and
// line feed (quotes are legal in HELP).
func escapeHelp(h string) string {
	if !strings.ContainsAny(h, "\\\n") {
		return h
	}
	var b strings.Builder
	b.Grow(len(h) + 8)
	for _, r := range h {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// renderLabels formats labels as {k="v",...} with label names in the order
// given (callers pass a fixed order, so identity strings are stable).
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// register adds inst under name+labels, or returns the existing instrument
// if an identical registration (same name, labels and kind) already exists —
// re-registering is idempotent so independent components can share a
// counter. A name reuse with a different kind or help text panics: that is
// a programming error, not a runtime condition.
func (r *Registry) register(name, help string, labels []Label, inst instrument) instrument {
	ls := renderLabels(labels)
	key := name + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.index[key]; ok {
		prev := r.entries[i]
		if prev.inst.kind() != inst.kind() || prev.help != help {
			panic(fmt.Sprintf("metrics: %s re-registered as a different %s", key, inst.kind()))
		}
		return prev.inst
	}
	// A family must agree on kind and help across label sets.
	for _, e := range r.entries {
		if e.name == name && (e.inst.kind() != inst.kind() || e.help != help) {
			panic(fmt.Sprintf("metrics: family %s registered with conflicting kind or help", name))
		}
	}
	r.index[key] = len(r.entries)
	r.entries = append(r.entries, entry{name: name, labels: ls, help: help, inst: inst})
	return inst
}

// Counter registers (or fetches) a monotonically increasing counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, labels, &Counter{}).(*Counter)
}

// Gauge registers (or fetches) an integer gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, labels, &Gauge{}).(*Gauge)
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time, e.g. a byte count owned by another component. fn must be safe to
// call from the scrape goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, labels, gaugeFunc(fn))
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — for monotone counts owned by another component (e.g. a
// cache shard's engine statistics). fn must be safe to call from the
// scrape goroutine and must never decrease.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, labels, counterFunc(fn))
}

// Histogram registers (or fetches) a fixed-bucket histogram. buckets are
// the inclusive upper bounds in strictly ascending order; an implicit +Inf
// bucket is always appended. Histogram panics on unsorted bounds.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: histogram %s buckets must ascend strictly", name))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), buckets...)}
	h.counts = make([]atomic.Uint64, len(buckets)+1)
	return r.register(name, help, labels, h).(*Histogram)
}

// WritePrometheus renders every registered instrument in text exposition
// format, sorted by family name (registration order breaks ties within a
// family), so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	entries := append([]entry(nil), r.entries...)
	r.mu.Unlock()
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	var b strings.Builder
	prev := ""
	for _, e := range entries {
		if e.name != prev {
			fmt.Fprintf(&b, "# HELP %s %s\n", e.name, escapeHelp(e.help))
			fmt.Fprintf(&b, "# TYPE %s %s\n", e.name, e.inst.kind())
			prev = e.name
		}
		e.inst.write(&b, e.name, e.labels)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatFloat renders v the way Prometheus clients do: shortest
// round-tripping representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter is a monotonically increasing uint64. The zero value is ready to
// use, but counters should be obtained from a Registry so they are exposed.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) kind() string { return "counter" }

func (c *Counter) write(b *strings.Builder, name, labels string) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(c.v.Load(), 10))
	b.WriteByte('\n')
}

// Gauge is a settable int64.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) kind() string { return "gauge" }

func (g *Gauge) write(b *strings.Builder, name, labels string) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(g.v.Load(), 10))
	b.WriteByte('\n')
}

// gaugeFunc is a callback-backed gauge.
type gaugeFunc func() float64

func (f gaugeFunc) kind() string { return "gauge" }

func (f gaugeFunc) write(b *strings.Builder, name, labels string) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(f()))
	b.WriteByte('\n')
}

// counterFunc is a callback-backed counter.
type counterFunc func() float64

func (f counterFunc) kind() string { return "counter" }

func (f counterFunc) write(b *strings.Builder, name, labels string) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(f()))
	b.WriteByte('\n')
}

// Histogram counts observations into fixed buckets. Observe is two atomic
// adds plus a CAS loop for the float sum; bounds never change after
// registration, so no lock is taken.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

func (h *Histogram) kind() string { return "histogram" }

func (h *Histogram) write(b *strings.Builder, name, labels string) {
	// _bucket lines carry cumulative counts and an extra le label.
	base := labels
	if base == "" {
		base = "{"
	} else {
		base = base[:len(base)-1] + ","
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		fmt.Fprintf(b, "%s_bucket%sle=%q} %d\n", name, base, le, cum)
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, cum)
}

// DefBuckets are general-purpose latency buckets in seconds, matching the
// Prometheus client default so dashboards transfer.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// SizeBuckets are power-of-two count buckets for batch sizes (eviction
// batches, queue depths).
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

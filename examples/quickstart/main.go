// Quickstart: build the paper's 576-clip repository, attach a DYNSimple
// cache sized at 12.5% of the repository, drive it with a Zipfian workload
// and print the headline metrics.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/dynsimple"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

func main() {
	// The repository of Section 3.3: 288 video + 288 audio clips with sizes
	// from 2.2 MB to 3.5 GB.
	repo := media.PaperRepository()

	// DYNSimple with the paper-recommended history depth K=2.
	policy, err := dynsimple.New(repo.N(), dynsimple.DefaultK)
	if err != nil {
		log.Fatal(err)
	}

	// A cache holding 12.5% of the repository bytes.
	cache, err := core.New(repo, repo.CacheSizeForRatio(0.125), policy)
	if err != nil {
		log.Fatal(err)
	}

	// A seeded Zipfian request stream (theta = 0.27, the movie-popularity
	// model the paper cites).
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := workload.NewGenerator(dist, 42)
	if err != nil {
		log.Fatal(err)
	}

	const requests = 10000
	for i := 0; i < requests; i++ {
		if _, err := cache.Request(gen.Next()); err != nil {
			log.Fatal(err)
		}
	}

	s := cache.Stats()
	fmt.Printf("policy          %s\n", policy.Name())
	fmt.Printf("repository      %d clips, %v\n", repo.N(), repo.TotalSize())
	fmt.Printf("cache           %v\n", cache.Capacity())
	fmt.Printf("requests        %d\n", s.Requests)
	fmt.Printf("hit rate        %.2f%%\n", s.HitRate()*100)
	fmt.Printf("byte hit rate   %.2f%%\n", s.ByteHitRate()*100)
	fmt.Printf("theoretical     %.2f%% of future requests hit the current content\n",
		cache.TheoreticalHitRate(gen.PMF())*100)
	fmt.Printf("resident clips  %d\n", cache.NumResident())
}

// Cooperative: the paper's future-work scenario (Section 5). Four FMC
// phones in the same radio range form an ad hoc network. The example runs
// the same workload twice — once with purely greedy per-device caching, and
// once with a simple cooperative placement rule (decline clips already held
// by a peer) — and compares the number of references serviced without the
// base station.
//
// Run with:
//
//	go run ./examples/cooperative
package main

import (
	"fmt"
	"log"

	"mediacache/internal/coop"
	"mediacache/internal/media"
	"mediacache/internal/policy/dynsimple"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

func main() {
	const (
		devices = 4
		rounds  = 5000
		ratio   = 0.02 // each device caches 2% of the repository
	)
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		log.Fatal(err)
	}

	build := func(maxCopies int) *coop.Network {
		net := coop.NewNetwork(coop.Config{MaxCopies: maxCopies})
		for i := 0; i < devices; i++ {
			policy, err := dynsimple.New(repo.N(), dynsimple.DefaultK)
			if err != nil {
				log.Fatal(err)
			}
			gen, err := workload.NewGenerator(dist, uint64(7000+i))
			if err != nil {
				log.Fatal(err)
			}
			if _, err := net.AddDevice(repo, repo.CacheSizeForRatio(ratio), policy, gen); err != nil {
				log.Fatal(err)
			}
		}
		return net
	}

	greedy := build(0)
	dedup := build(1)
	if err := greedy.Run(rounds); err != nil {
		log.Fatal(err)
	}
	if err := dedup.Run(rounds); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d devices, %d rounds, %.0f%% cache each, DYNSimple(K=2)\n\n",
		devices, rounds, ratio*100)
	fmt.Printf("%-22s %10s %10s %12s %10s\n",
		"mode", "local-hit", "peer-hit", "coop-rate", "coverage")
	for _, row := range []struct {
		name string
		net  *coop.Network
	}{
		{"greedy (uncoordinated)", greedy},
		{"cooperative (dedup)", dedup},
	} {
		s := row.net.Stats()
		fmt.Printf("%-22s %9.1f%% %9.1f%% %11.1f%% %9.1f%%\n",
			row.name,
			s.LocalHitRate()*100,
			float64(s.PeerHits)/float64(s.Requests)*100,
			s.CooperativeHitRate()*100,
			row.net.UnionCoverage()*100)
	}
	fmt.Println()
	fmt.Println("the dedup rule trades local hits for neighborhood coverage: fewer")
	fmt.Println("duplicate copies means more distinct clips within radio range, so")
	fmt.Println("more references are serviced without touching the base station.")
}

// FMC phone: simulate the paper's motivating scenario (Section 1). A
// fixed-mobile-convergence phone alternates between three connectivity
// regimes over a simulated day:
//
//   - home Wi-Fi (fast: 20 Mbps allocated per stream),
//   - cellular on the road (slow: 1 Mbps allocated per stream),
//   - disconnected (no base station: only cache hits can be serviced).
//
// The example reports, per regime, the fraction of requests serviced and
// the average startup latency — showing how the cache turns into the only
// source of data availability while disconnected, and how it slashes
// startup latency on the slow cellular link.
//
// Run with:
//
//	go run ./examples/fmcphone
package main

import (
	"fmt"
	"log"

	"mediacache/internal/media"
	"mediacache/internal/netsim"
	"mediacache/internal/sim"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

// regime is one connectivity phase of the day.
type regime struct {
	name     string
	requests int
	// alloc is the per-stream bandwidth allocation; 0 means disconnected.
	alloc media.BitsPerSecond
	// admission is the bandwidth-reservation overhead in seconds.
	admission netsim.Seconds
}

func main() {
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := workload.NewGenerator(dist, sim.DefaultSeed)
	if err != nil {
		log.Fatal(err)
	}
	// A phone with a disk-backed cache holding 12.5% of the repository,
	// managed by DYNSimple.
	cache, err := sim.NewCache("dynsimple:2", repo, repo.CacheSizeForRatio(0.125), nil, sim.DefaultSeed)
	if err != nil {
		log.Fatal(err)
	}

	day := []regime{
		{name: "home Wi-Fi (morning)", requests: 3000, alloc: 20 * media.Mbps, admission: 0.05},
		{name: "cellular (commute)", requests: 1000, alloc: 1 * media.Mbps, admission: 0.5},
		{name: "disconnected (subway)", requests: 500, alloc: 0},
		{name: "cellular (day)", requests: 1500, alloc: 1 * media.Mbps, admission: 0.5},
		{name: "home Wi-Fi (evening)", requests: 4000, alloc: 20 * media.Mbps, admission: 0.05},
	}

	fmt.Println("A day in the life of an FMC phone cache (DYNSimple, 12.5% cache)")
	fmt.Println()
	fmt.Printf("%-24s %9s %8s %9s %14s\n", "regime", "requests", "hits", "serviced", "avg latency")
	for _, r := range day {
		served, hits := 0, 0
		var latency netsim.Seconds
		for i := 0; i < r.requests; i++ {
			id := gen.Next()
			if r.alloc == 0 {
				// Disconnected: only cache hits are serviceable. The cache
				// must not materialize anything (no network), so requests
				// that miss are simply unserviced; we do not drive the
				// cache to avoid phantom fetches.
				if cache.Resident(id) {
					if _, err := cache.Request(id); err != nil {
						log.Fatal(err)
					}
					hits++
					served++
				}
				continue
			}
			out, err := cache.Request(id)
			if err != nil {
				log.Fatal(err)
			}
			served++
			if out.IsHit() {
				hits++
				continue // local storage: negligible startup latency
			}
			clip := repo.Clip(id)
			lat, err := netsim.StartupLatency(clip, r.alloc, r.admission)
			if err != nil {
				log.Fatal(err)
			}
			latency += lat
		}
		avgLatency := 0.0
		if misses := served - hits; misses > 0 {
			avgLatency = float64(latency) / float64(misses)
		}
		fmt.Printf("%-24s %9d %8d %8.1f%% %12.1fs\n",
			r.name, r.requests, hits, 100*float64(served)/float64(r.requests), avgLatency)
	}
	fmt.Println()
	s := cache.Stats()
	fmt.Printf("end of day: %.1f%% overall hit rate, %v fetched over the air\n",
		s.HitRate()*100, s.BytesFetched)
	fmt.Println("while disconnected the cache was the only source of data availability;")
	fmt.Println("on cellular, misses pay a large prefetch latency (B_net < B_display).")
}

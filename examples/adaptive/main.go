// Adaptive: reproduce the paper's evolving-access-pattern story
// (Section 4.4.1) interactively. The workload's popular clips shift
// mid-run; the example prints how quickly each technique's theoretical hit
// rate recovers, showing DYNSimple adapting within a few hundred requests
// while GreedyDual-Freq lags.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"mediacache/internal/media"
	"mediacache/internal/sim"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

func main() {
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		log.Fatal(err)
	}
	capacity := repo.CacheSizeForRatio(0.125)

	// The popular clips shift by 200 identities after 10,000 requests.
	schedule := workload.Schedule{
		{Shift: 0, Requests: 10000},
		{Shift: 200, Requests: 10000},
	}

	specs := []string{"dynsimple:2", "igd:2", "gdfreq", "greedydual"}
	fmt.Println("Theoretical hit rate (%) around the popularity shift at request 10,000")
	fmt.Println()
	header := fmt.Sprintf("%-10s", "request")
	results := make(map[string]*sim.Result, len(specs))
	var order []string
	for _, spec := range specs {
		gen, err := workload.NewGenerator(dist, sim.DefaultSeed)
		if err != nil {
			log.Fatal(err)
		}
		cache, err := sim.NewCache(spec, repo, capacity, gen.PMF(), sim.DefaultSeed)
		if err != nil {
			log.Fatal(err)
		}
		name := cache.Policy().Name()
		res, err := sim.Run(name, cache, gen, schedule, sim.RunConfig{WindowSize: 100})
		if err != nil {
			log.Fatal(err)
		}
		results[name] = res
		order = append(order, name)
		header += fmt.Sprintf("  %-16s", name)
	}
	fmt.Println(header)

	// Print a window every 500 requests from 9,000 to 13,000 — the
	// interesting region around the shift.
	for req := 9000; req <= 13000; req += 500 {
		row := fmt.Sprintf("%-10d", req)
		for _, name := range order {
			y := sampleAt(results[name], req)
			row += fmt.Sprintf("  %-16.1f", y*100)
		}
		fmt.Println(row)
	}
	fmt.Println()
	fmt.Println("DYNSimple recovers within a few hundred requests; GreedyDual-Freq's")
	fmt.Println("monotone reference counts keep stale clips resident far longer.")
}

// sampleAt returns the windowed theoretical rate at the window ending at
// request req.
func sampleAt(res *sim.Result, req int) float64 {
	for _, w := range res.Windows {
		if w.EndRequest == req {
			return w.Theoretical
		}
	}
	return 0
}

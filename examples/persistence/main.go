// Persistence: an FMC device's disk-backed cache surviving a power cycle
// (Section 1 configures the device with "an inexpensive magnetic disk
// drive"). The example warms a cache, snapshots it to a file, simulates a
// reboot by building a fresh cache, restores the snapshot, and shows the
// hit rate picking up where it left off instead of paying a second cold
// start.
//
// Run with:
//
//	go run ./examples/persistence
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/policy/dynsimple"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

func main() {
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		log.Fatal(err)
	}
	build := func() *core.Cache {
		policy, err := dynsimple.New(repo.N(), dynsimple.DefaultK)
		if err != nil {
			log.Fatal(err)
		}
		cache, err := core.New(repo, repo.CacheSizeForRatio(0.125), policy)
		if err != nil {
			log.Fatal(err)
		}
		return cache
	}
	measure := func(c *core.Cache, gen *workload.Generator, n int) float64 {
		hits := 0
		for i := 0; i < n; i++ {
			out, err := c.Request(gen.Next())
			if err != nil {
				log.Fatal(err)
			}
			if out.IsHit() {
				hits++
			}
		}
		return float64(hits) / float64(n)
	}

	// Day one: cold start, then steady state.
	day1Gen, err := workload.NewGenerator(dist, 42)
	if err != nil {
		log.Fatal(err)
	}
	day1 := build()
	fmt.Printf("day 1, first 2000 requests (cold):     %5.1f%% hit rate\n", measure(day1, day1Gen, 2000)*100)
	fmt.Printf("day 1, next 3000 requests (warm):      %5.1f%% hit rate\n", measure(day1, day1Gen, 3000)*100)

	// Power down: persist the cache index to disk.
	path := filepath.Join(os.TempDir(), "mediacache-snapshot.gob")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := day1.Snapshot().WriteSnapshot(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	defer os.Remove(path)
	fmt.Printf("\npowered down; snapshot written to %s (%d resident clips)\n\n",
		path, day1.NumResident())

	// Reboot: a fresh process restores the snapshot.
	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	snap, err := core.ReadSnapshot(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	day2 := build()
	if err := day2.Restore(snap); err != nil {
		log.Fatal(err)
	}
	// Both day-2 scenarios replay the identical request stream (seed 43).
	day2Gen, err := workload.NewGenerator(dist, 43)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 2, first 2000 requests (restored): %5.1f%% hit rate\n", measure(day2, day2Gen, 2000)*100)

	// Contrast: what a cold day 2 would have looked like on the same stream.
	coldGen, err := workload.NewGenerator(dist, 43)
	if err != nil {
		log.Fatal(err)
	}
	cold := build()
	fmt.Printf("day 2, first 2000 requests (if cold):  %5.1f%% hit rate\n", measure(cold, coldGen, 2000)*100)
	fmt.Println("\nthe restored cache skips the cold start entirely: the disk-backed")
	fmt.Println("clip bytes survived the power cycle, so only the policy's reference")
	fmt.Println("history needs rebuilding.")
}

package main

import (
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-requests", "1200", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 3", "LRU-2", "GreedyDual", "0.75"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunCSV(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-csv", "-requests", "1200", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "S_T/S_DB,LRU-2,GreedyDual") {
		t.Fatalf("unexpected CSV header:\n%s", out.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 7 { // header + 6 ratios
		t.Fatalf("lines = %d", len(lines))
	}
}

func TestRunMultiSeed(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-seeds", "2", "-requests", "800", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mean of 2 seeds") {
		t.Errorf("mean table missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "std dev across 2 seeds") {
		t.Errorf("std table missing:\n%s", out.String())
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-requests", "800", "3", "quality"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 3") || !strings.Contains(out.String(), "Figure quality") {
		t.Errorf("multiple experiments missing:\n%s", out.String())
	}
}

// TestRunMetricsRegistry checks -metrics prints the per-cell table plus
// the shared registry in Prometheus exposition format: engine counters
// folded from the sweep, and the pool gauges the worker pool fed live.
func TestRunMetricsRegistry(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-metrics", "-requests", "800", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"cell metrics [3]:",
		"metrics registry (Prometheus text exposition):",
		"# TYPE mediacache_cache_hits_total counter",
		"# TYPE mediacache_cache_misses_total counter",
		"# TYPE mediacache_sweep_cells_total counter",
		"# TYPE mediacache_sweep_queue_depth gauge",
		"# TYPE mediacache_sweep_cell_seconds histogram",
		"mediacache_sweep_cells_total 12", // Figure 3: 2 specs x 6 ratios
	} {
		if !strings.Contains(text, want) {
			t.Errorf("-metrics output missing %q", want)
		}
	}
	// The registry's requests must equal the sweep total: 12 cells x 800.
	if !strings.Contains(text, "mediacache_cache_hits_total") {
		t.Fatal("no engine counters folded")
	}
}

// TestRunFaults pins the chaos-mode CLI contract: the same -seed and
// -faults profile give byte-identical output across runs, "-faults off"
// is byte-identical to omitting the flag, and an enabled profile actually
// changes the figure.
func TestRunFaults(t *testing.T) {
	render := func(args ...string) string {
		t.Helper()
		var out strings.Builder
		if err := run(append([]string{"-csv", "-requests", "800"}, args...), &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	clean := render("3")
	if off := render("-faults", "off", "3"); off != clean {
		t.Errorf("-faults off output differs from fault-free run:\n%s\nvs\n%s", off, clean)
	}
	chaosA := render("-faults", "p=0.2", "3")
	chaosB := render("-faults", "p=0.2", "3")
	if chaosA != chaosB {
		t.Errorf("same seed and profile gave different output:\n%s\nvs\n%s", chaosA, chaosB)
	}
	if chaosA == clean {
		t.Error("20% fetch-error profile left the figure unchanged")
	}
	if otherSeed := render("-seed", "7", "-faults", "p=0.2", "3"); otherSeed == chaosA {
		t.Error("different seeds gave identical chaos output")
	}
}

func TestRunFaultsBadProfile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-faults", "p=1.5", "3"}, &out); err == nil {
		t.Fatal("out-of-range fault rate should fail")
	}
	if err := run([]string{"-faults", "nonsense", "3"}, &out); err == nil {
		t.Fatal("malformed fault profile should fail")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"definitely-not-an-experiment"}, &out); err == nil {
		t.Fatal("unknown experiment should fail")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("unknown flag should fail")
	}
}

func TestExperimentListStable(t *testing.T) {
	// Every id printed in usage resolves; the "all" expansion matches the
	// registry order.
	var out strings.Builder
	if err := run([]string{"-requests", "600", "quality"}, &out); err != nil {
		t.Fatal(err)
	}
}

package main

import (
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-requests", "1200", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 3", "LRU-2", "GreedyDual", "0.75"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunCSV(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-csv", "-requests", "1200", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "S_T/S_DB,LRU-2,GreedyDual") {
		t.Fatalf("unexpected CSV header:\n%s", out.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 7 { // header + 6 ratios
		t.Fatalf("lines = %d", len(lines))
	}
}

func TestRunMultiSeed(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-seeds", "2", "-requests", "800", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "mean of 2 seeds") {
		t.Errorf("mean table missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "std dev across 2 seeds") {
		t.Errorf("std table missing:\n%s", out.String())
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-requests", "800", "3", "quality"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 3") || !strings.Contains(out.String(), "Figure quality") {
		t.Errorf("multiple experiments missing:\n%s", out.String())
	}
}

// TestRunMetricsRegistry checks -metrics prints the per-cell table plus
// the shared registry in Prometheus exposition format: engine counters
// folded from the sweep, and the pool gauges the worker pool fed live.
func TestRunMetricsRegistry(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-metrics", "-requests", "800", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"cell metrics [3]:",
		"metrics registry (Prometheus text exposition):",
		"# TYPE mediacache_cache_hits_total counter",
		"# TYPE mediacache_cache_misses_total counter",
		"# TYPE mediacache_sweep_cells_total counter",
		"# TYPE mediacache_sweep_queue_depth gauge",
		"# TYPE mediacache_sweep_cell_seconds histogram",
		"mediacache_sweep_cells_total 12", // Figure 3: 2 specs x 6 ratios
	} {
		if !strings.Contains(text, want) {
			t.Errorf("-metrics output missing %q", want)
		}
	}
	// The registry's requests must equal the sweep total: 12 cells x 800.
	if !strings.Contains(text, "mediacache_cache_hits_total") {
		t.Fatal("no engine counters folded")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"definitely-not-an-experiment"}, &out); err == nil {
		t.Fatal("unknown experiment should fail")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("unknown flag should fail")
	}
}

func TestExperimentListStable(t *testing.T) {
	// Every id printed in usage resolves; the "all" expansion matches the
	// registry order.
	var out strings.Builder
	if err := run([]string{"-requests", "600", "quality"}, &out); err != nil {
		t.Fatal(err)
	}
}

// Command experiments regenerates every table and figure of the paper's
// evaluation section, plus this repository's extension experiments.
//
// Usage:
//
//	experiments [-seed N] [-requests N] [-seeds N] [-parallel N] [-faults PROFILE] [-csv] [all|2a|2b|3|...]...
//
// With no arguments (or "all") every experiment runs in order. Hit rates
// are printed as percentages; -csv emits machine-readable CSV instead;
// -seeds N replicates each experiment across N consecutive seeds and prints
// the across-seed mean and standard-deviation tables.
//
// -faults enables chaos mode: a deterministic fault injector fails the
// given fraction of remote fetches (e.g. -faults p=0.05, or a full
// error=,timeout=,partial=,latency=,jitter= profile; see internal/fault).
// The schedule is a pure function of the profile and -seed, so chaos runs
// are exactly reproducible; -faults off (or omitting the flag) leaves the
// output byte-identical to a fault-free build.
//
// Every experiment decomposes into independent sweep cells that a worker
// pool executes concurrently; -parallel N bounds the workers (0 = one per
// CPU, 1 = sequential). The output is byte-identical at any worker count.
// -metrics appends a per-cell engine-counter table (evictions, bytes
// evicted, bypassed requests, victim-selection calls, wall time) after each
// figure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"mediacache/internal/fault"
	"mediacache/internal/metrics"
	"mediacache/internal/obs"
	"mediacache/internal/sim"
	"mediacache/internal/texttable"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

// run executes the CLI against args, writing output to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	seed := fs.Uint64("seed", sim.DefaultSeed, "master random seed (paper footnote 5)")
	requests := fs.Int("requests", sim.DefaultRequests, "requests per run")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	plot := fs.Bool("plot", false, "render ASCII plots instead of tables (best for 6b/7b transients)")
	seeds := fs.Int("seeds", 1, "replicate each experiment across N consecutive seeds and report means (+ std dev table)")
	parallel := fs.Int("parallel", 0, "worker-pool size for sweep cells (0 = GOMAXPROCS, 1 = sequential)")
	metricsFlag := fs.Bool("metrics", false, "print per-cell engine counters plus a Prometheus-exposition registry dump")
	faultsFlag := fs.String("faults", "", `fault-injection profile for chaos runs, e.g. "p=0.05" or "error=0.1,timeout=0.05,latency=20ms" ("" or "off" disables)`)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: experiments [flags] [experiment]...\n\nexperiments:\n")
		for _, e := range sim.Experiments {
			fmt.Fprintf(fs.Output(), "  %s\n", e.ID)
		}
		fmt.Fprintln(fs.Output(), "\nflags:")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	ids := fs.Args()
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		ids = nil
		for _, e := range sim.Experiments {
			ids = append(ids, e.ID)
		}
	}
	// -metrics reports through the same registry code path as the
	// cacheserver's GET /v1/metrics: the sweep pool feeds the queue-depth
	// and cell-timing instruments live, engine counters fold in per
	// figure, and the run ends with a text-exposition dump.
	var reg *metrics.Registry
	var engine *obs.CacheMetrics
	if *metricsFlag {
		reg = metrics.NewRegistry()
		engine = obs.NewCacheMetrics(reg)
		sim.SetPoolObserver(obs.NewPoolMetrics(reg))
		defer sim.SetPoolObserver(nil)
	}

	profile, err := fault.ParseProfile(*faultsFlag)
	if err != nil {
		return err
	}

	opt := sim.Options{Seed: *seed, Requests: *requests, Parallel: *parallel, Faults: profile}
	for _, id := range ids {
		runExp, ok := sim.ByID(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (see -h for the list)", id)
		}
		start := time.Now()
		var fig, stdFig *sim.Figure
		var err error
		if *seeds > 1 {
			fig, stdFig, err = sim.Replicate(runExp, opt, *seeds)
		} else {
			fig, err = runExp(opt)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		render := texttable.Percent
		if id == "quality" || id == "latency" {
			render = texttable.Scientific
		}
		for _, f := range []*sim.Figure{fig, stdFig} {
			if f == nil {
				continue
			}
			switch {
			case *csv:
				err = texttable.RenderCSV(out, f)
			case *plot:
				err = texttable.RenderPlot(out, f, 0, 0)
			default:
				err = texttable.RenderFigure(out, f, render)
			}
			if err != nil {
				return fmt.Errorf("rendering %s: %w", id, err)
			}
		}
		if *metricsFlag && fig != nil && len(fig.Cells) > 0 {
			renderMetrics(out, fig)
			engine.AddSweep(fig.TotalMetrics())
		}
		if !*csv {
			fmt.Fprintf(out, "(%.1fs)\n\n", time.Since(start).Seconds())
		}
	}
	if reg != nil {
		fmt.Fprintln(out, "metrics registry (Prometheus text exposition):")
		if err := reg.WritePrometheus(out); err != nil {
			return err
		}
	}
	return nil
}

// renderMetrics prints the per-cell engine counters of fig plus a total
// row. Wall times sum to total compute, not elapsed time: cells overlap
// under the parallel runner.
func renderMetrics(out io.Writer, fig *sim.Figure) {
	fmt.Fprintf(out, "cell metrics [%s]:\n", fig.ID)
	fmt.Fprintf(out, "  %-36s %10s %10s %14s %10s %10s %12s %10s\n",
		"cell", "requests", "evictions", "bytesEvicted", "bypassed", "fetchFail", "victimCalls", "wall")
	for _, c := range fig.Cells {
		fmt.Fprintf(out, "  %-36s %10d %10d %14d %10d %10d %12d %10s\n",
			c.Label, c.Requests, c.Evictions, int64(c.BytesEvicted),
			c.Bypassed, c.FetchFailed, c.VictimCalls, c.Wall.Round(time.Millisecond))
	}
	total := fig.TotalMetrics()
	fmt.Fprintf(out, "  %-36s %10d %10d %14d %10d %10d %12d %10s\n",
		"TOTAL", total.Requests, total.Evictions, int64(total.BytesEvicted),
		total.Bypassed, total.FetchFailed, total.VictimCalls, total.Wall.Round(time.Millisecond))
}

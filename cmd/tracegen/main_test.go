package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mediacache/internal/workload"
)

func TestGenerateAndInspectRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	var out strings.Builder
	err := run([]string{"-out", path, "-requests", "800", "-seed", "5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote 800 requests") {
		t.Fatalf("unexpected output: %s", out.String())
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := workload.ReadCSV(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Requests) != 800 || trace.NumClips != 576 {
		t.Fatalf("trace = %d requests, %d clips", len(trace.Requests), trace.NumClips)
	}

	out.Reset()
	if err := run([]string{"-inspect", path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"zipf0.27-shift0-seed5", "requests   800", "top 10 clips"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("inspect output missing %q:\n%s", want, out.String())
		}
	}
}

func TestCustomNameAndShift(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.csv")
	var out strings.Builder
	err := run([]string{"-out", path, "-requests", "100", "-shift", "200", "-name", "myTrace"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"myTrace"`) {
		t.Fatalf("name missing: %s", out.String())
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},                               // neither -out nor -inspect
		{"-inspect", "/nope"},            // missing file
		{"-out", "/nope/x.csv"},          // unwritable path
		{"-out", "x.csv", "-zipf", "5"},  // bad zipf mean
		{"-out", "x.csv", "-clips", "0"}, // bad clip count
		{"-bogus-flag"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestInspectRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "garbage.csv")
	if err := os.WriteFile(path, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-inspect", path}, &out); err == nil {
		t.Fatal("garbage trace should fail")
	}
}

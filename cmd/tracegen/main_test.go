package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mediacache/internal/workload"
)

func TestGenerateAndInspectRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	var out strings.Builder
	err := run([]string{"-out", path, "-requests", "800", "-seed", "5"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote 800 requests") {
		t.Fatalf("unexpected output: %s", out.String())
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := workload.ReadCSV(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Requests) != 800 || trace.NumClips != 576 {
		t.Fatalf("trace = %d requests, %d clips", len(trace.Requests), trace.NumClips)
	}

	out.Reset()
	if err := run([]string{"-inspect", path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"zipf0.27-shift0-seed5", "requests   800", "top 10 clips"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("inspect output missing %q:\n%s", want, out.String())
		}
	}
}

// TestFitGenerateV2RoundTrip generates a session trace from a fitted spec,
// re-reads it as v2, and checks -inspect reports the session structure.
func TestFitGenerateV2RoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fit.csv")
	var out strings.Builder
	err := run([]string{
		"-out", path, "-requests", "500", "-seed", "11",
		"-fit", "clips=200,theta=0.3,clients=4,sess=8,think=1000,gap=50000,ranged=0.25,prefix=0.5,lenfrac=0.2",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote 500 requests") || !strings.Contains(out.String(), "v2") {
		t.Fatalf("unexpected output: %s", out.String())
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.ReadCSV(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !tr.V2() {
		t.Fatal("fit-generated trace should carry v2 columns")
	}
	if len(tr.Requests) != 500 {
		t.Fatalf("trace has %d requests, want 500", len(tr.Requests))
	}
	clients := map[string]bool{}
	ranged := 0
	for i := range tr.Requests {
		if tr.Clients[i] == "" {
			t.Fatalf("request %d has no client", i)
		}
		clients[tr.Clients[i]] = true
		if i > 0 && tr.Ticks[i] < tr.Ticks[i-1] {
			t.Fatalf("ticks not monotone at %d: %d < %d", i, tr.Ticks[i], tr.Ticks[i-1])
		}
		if tr.RangeLens[i] > 0 {
			ranged++
		}
	}
	if len(clients) != 4 {
		t.Fatalf("saw %d clients, want 4", len(clients))
	}
	if ranged == 0 || ranged == len(tr.Requests) {
		t.Fatalf("ranged mix = %d of %d, want a proper mix", ranged, len(tr.Requests))
	}

	out.Reset()
	if err := run([]string{"-inspect", path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"v2 columns:", "clients    4 distinct", "ranged", "sessions"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("inspect output missing %q:\n%s", want, out.String())
		}
	}
}

func TestCustomNameAndShift(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.csv")
	var out strings.Builder
	err := run([]string{"-out", path, "-requests", "100", "-shift", "200", "-name", "myTrace"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"myTrace"`) {
		t.Fatalf("name missing: %s", out.String())
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},                               // neither -out nor -inspect
		{"-inspect", "/nope"},            // missing file
		{"-out", "/nope/x.csv"},          // unwritable path
		{"-out", "x.csv", "-zipf", "5"},  // bad zipf mean
		{"-out", "x.csv", "-clips", "0"}, // bad clip count
		{"-out", "x.csv", "-fit", "clips=0"},
		// fit spec drawing from more clips than the target repository
		{"-out", "x.csv", "-clips", "100",
			"-fit", "clips=200,theta=0.3,clients=2,sess=4,think=100,gap=9000"},
		{"-bogus-flag"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestInspectRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "garbage.csv")
	if err := os.WriteFile(path, []byte("not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-inspect", path}, &out); err == nil {
		t.Fatal("garbage trace should fail")
	}
}

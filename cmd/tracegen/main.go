// Command tracegen generates, inspects and converts reference-string
// traces for the cache simulator.
//
// With -fit the trace is generated from a fitted session spec (the output
// of traceql -fit) through the unified workload.Source face, and written
// in the v2 format carrying the client, tick and range columns. -inspect
// reports both formats: the v1 rank/frequency summary always, plus the
// session structure (clients, sessions, ranged mix, time span) when the
// trace carries v2 columns.
//
// Usage examples:
//
//	tracegen -out trace.csv -requests 10000 -seed 42
//	tracegen -out shifted.csv -shift 200
//	tracegen -out sessions.csv -fit "clips=576,theta=0.27,clients=8,sess=10,think=2000,gap=60000"
//	tracegen -inspect trace.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"mediacache/internal/media"
	"mediacache/internal/sim"
	"mediacache/internal/trace"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}

// run executes the CLI against args, writing human-readable output to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	outPath := fs.String("out", "", "write a generated trace to this CSV file")
	inspect := fs.String("inspect", "", "print summary statistics of an existing CSV trace")
	requests := fs.Int("requests", sim.DefaultRequests, "requests to generate")
	seed := fs.Uint64("seed", sim.DefaultSeed, "workload seed")
	mean := fs.Float64("zipf", zipf.DefaultMean, "Zipfian mean (theta)")
	shift := fs.Int("shift", 0, "identity shift g")
	clips := fs.Int("clips", media.PaperRepositorySize, "repository size the trace targets")
	name := fs.String("name", "", "trace name (defaults to a parameter summary)")
	fitFlag := fs.String("fit", "", "generate a v2 session trace from a fitted spec (traceql -fit output; overrides -zipf/-shift)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *inspect != "" {
		return inspectTrace(out, *inspect)
	}
	if *outPath == "" {
		return fmt.Errorf("either -out or -inspect is required")
	}
	traceName := *name
	var tr *workload.Trace
	if *fitFlag != "" {
		spec, err := workload.ParseFit(*fitFlag)
		if err != nil {
			return err
		}
		if spec.Clips > *clips {
			return fmt.Errorf("fit spec draws from %d clips; raise -clips (%d)", spec.Clips, *clips)
		}
		var repo *media.Repository
		if spec.RangedFrac > 0 {
			// Range draws need clip sizes; the paper repository covers any
			// spec fitted from traffic against it.
			repo = media.PaperRepository()
		}
		src, err := workload.NewSessionSource(spec, repo, *seed)
		if err != nil {
			return err
		}
		if traceName == "" {
			traceName = fmt.Sprintf("fit-clips%d-theta%.2f-seed%d", spec.Clips, spec.Theta, *seed)
		}
		tr = workload.RecordTimed(traceName, src, *clips, *requests)
	} else {
		dist, err := zipf.New(*clips, *mean)
		if err != nil {
			return err
		}
		gen, err := workload.NewGenerator(dist, *seed)
		if err != nil {
			return err
		}
		if err := gen.SetShift(*shift); err != nil {
			return err
		}
		if traceName == "" {
			traceName = fmt.Sprintf("zipf%.2f-shift%d-seed%d", *mean, *shift, *seed)
		}
		tr = workload.Record(traceName, gen, *requests)
	}
	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.WriteCSV(f); err != nil {
		return err
	}
	format := "v1"
	if tr.V2() {
		format = "v2"
	}
	fmt.Fprintf(out, "wrote %d requests to %s (trace %q, %d clips, %s)\n",
		len(tr.Requests), *outPath, tr.Name, tr.NumClips, format)
	return nil
}

// inspectTrace prints summary statistics of a stored trace.
func inspectTrace(out io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := workload.ReadCSV(f)
	if err != nil {
		return err
	}
	counts := make(map[media.ClipID]int)
	for _, id := range tr.Requests {
		counts[id]++
	}
	type pair struct {
		id media.ClipID
		n  int
	}
	top := make([]pair, 0, len(counts))
	for id, n := range counts {
		top = append(top, pair{id, n})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].n != top[j].n {
			return top[i].n > top[j].n
		}
		return top[i].id < top[j].id
	})
	fmt.Fprintf(out, "trace      %s\n", tr.Name)
	fmt.Fprintf(out, "clips      %d in repository, %d distinct referenced\n", tr.NumClips, len(counts))
	fmt.Fprintf(out, "requests   %d\n", len(tr.Requests))
	countVec := make([]int, tr.NumClips)
	for id, n := range counts {
		countVec[id-1] = n
	}
	if theta, err := zipf.EstimateMean(countVec); err == nil {
		fmt.Fprintf(out, "zipf fit   theta ~ %.2f (log-log rank/frequency regression)\n", theta)
	}
	fmt.Fprintln(out, "top 10 clips:")
	for i := 0; i < 10 && i < len(top); i++ {
		fmt.Fprintf(out, "  clip %-5d %6d requests (%.2f%%)\n",
			top[i].id, top[i].n, 100*float64(top[i].n)/float64(len(tr.Requests)))
	}
	if tr.V2() {
		inspectV2(out, tr)
	}
	return nil
}

// inspectV2 appends the session-structure summary a v2 trace carries on
// top of the v1 rank/frequency view: client and ranged-request counts,
// the tick span, and the sessionization at the default idle gap.
func inspectV2(out io.Writer, tr *workload.Trace) {
	events := trace.FromTrace(tr)
	clients := make(map[string]bool)
	ranged := 0
	for _, e := range events {
		clients[e.Client] = true
		if trace.Ranged(e) {
			ranged++
		}
	}
	fmt.Fprintln(out, "v2 columns:")
	fmt.Fprintf(out, "  clients    %d distinct\n", len(clients))
	fmt.Fprintf(out, "  ranged     %d requests (%.2f%%)\n",
		ranged, 100*float64(ranged)/float64(len(events)))
	if len(events) > 0 {
		lo, hi := trace.Time(events[0]), trace.Time(events[0])
		for _, e := range events[1:] {
			if t := trace.Time(e); t < lo {
				lo = t
			} else if t > hi {
				hi = t
			}
		}
		fmt.Fprintf(out, "  time span  %d us (ticks %d..%d)\n", hi-lo, lo, hi)
	}
	sessions := trace.Sessionize(events, 0)
	if len(sessions) > 0 {
		fmt.Fprintf(out, "  sessions   %d at %dus idle gap (mean length %.1f requests)\n",
			len(sessions), int64(trace.DefaultGapMicros),
			float64(len(events))/float64(len(sessions)))
	}
}

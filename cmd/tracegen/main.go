// Command tracegen generates, inspects and converts reference-string
// traces for the cache simulator.
//
// Usage examples:
//
//	tracegen -out trace.csv -requests 10000 -seed 42
//	tracegen -out shifted.csv -shift 200
//	tracegen -inspect trace.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"mediacache/internal/media"
	"mediacache/internal/sim"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}

// run executes the CLI against args, writing human-readable output to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	outPath := fs.String("out", "", "write a generated trace to this CSV file")
	inspect := fs.String("inspect", "", "print summary statistics of an existing CSV trace")
	requests := fs.Int("requests", sim.DefaultRequests, "requests to generate")
	seed := fs.Uint64("seed", sim.DefaultSeed, "workload seed")
	mean := fs.Float64("zipf", zipf.DefaultMean, "Zipfian mean (theta)")
	shift := fs.Int("shift", 0, "identity shift g")
	clips := fs.Int("clips", media.PaperRepositorySize, "repository size the trace targets")
	name := fs.String("name", "", "trace name (defaults to a parameter summary)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *inspect != "" {
		return inspectTrace(out, *inspect)
	}
	if *outPath == "" {
		return fmt.Errorf("either -out or -inspect is required")
	}
	dist, err := zipf.New(*clips, *mean)
	if err != nil {
		return err
	}
	gen, err := workload.NewGenerator(dist, *seed)
	if err != nil {
		return err
	}
	if err := gen.SetShift(*shift); err != nil {
		return err
	}
	traceName := *name
	if traceName == "" {
		traceName = fmt.Sprintf("zipf%.2f-shift%d-seed%d", *mean, *shift, *seed)
	}
	trace := workload.Record(traceName, gen, *requests)
	f, err := os.Create(*outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteCSV(f); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %d requests to %s (trace %q, %d clips)\n",
		len(trace.Requests), *outPath, trace.Name, trace.NumClips)
	return nil
}

// inspectTrace prints summary statistics of a stored trace.
func inspectTrace(out io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	trace, err := workload.ReadCSV(f)
	if err != nil {
		return err
	}
	counts := make(map[media.ClipID]int)
	for _, id := range trace.Requests {
		counts[id]++
	}
	type pair struct {
		id media.ClipID
		n  int
	}
	top := make([]pair, 0, len(counts))
	for id, n := range counts {
		top = append(top, pair{id, n})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].n != top[j].n {
			return top[i].n > top[j].n
		}
		return top[i].id < top[j].id
	})
	fmt.Fprintf(out, "trace      %s\n", trace.Name)
	fmt.Fprintf(out, "clips      %d in repository, %d distinct referenced\n", trace.NumClips, len(counts))
	fmt.Fprintf(out, "requests   %d\n", len(trace.Requests))
	countVec := make([]int, trace.NumClips)
	for id, n := range counts {
		countVec[id-1] = n
	}
	if theta, err := zipf.EstimateMean(countVec); err == nil {
		fmt.Fprintf(out, "zipf fit   theta ~ %.2f (log-log rank/frequency regression)\n", theta)
	}
	fmt.Fprintln(out, "top 10 clips:")
	for i := 0; i < 10 && i < len(top); i++ {
		fmt.Fprintf(out, "  clip %-5d %6d requests (%.2f%%)\n",
			top[i].id, top[i].n, 100*float64(top[i].n)/float64(len(trace.Requests)))
	}
	return nil
}

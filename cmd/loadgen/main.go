// Command loadgen is an open-loop load generator for the media cache: it
// offers requests at a fixed arrival rate — arrivals are scheduled on a
// clock, not gated on completions — and reports what the cache actually
// sustained. Closed-loop drivers (like the server throughput benchmarks)
// slow their offered load down to whatever the system completes, hiding
// queueing collapse; the open-loop form keeps offering, so saturation shows
// up honestly as climbing tail latency and shed arrivals.
//
// The workload reuses the simulator's generators through their unified
// workload.Source face: seeded Zipf popularity (internal/workload),
// optional partial-content ranges, optional popularity churn via the
// SHIFTxREQUESTS schedule syntax of -workload, and fitted session specs
// from traceql -fit (-fit replays the spec's own arrival schedule and
// client identities instead of a fixed rate). Targets are either an
// in-process shard pool (-mode pool, the default; misses cost -fetchlat
// and fail with probability -error-rate) or a running cacheserver over
// HTTP (-mode http -url ...).
//
// Every arrival carries a stable client identity — round-robin across
// -clients workers, or the fitted spec's own clients — stamped into the
// X-Client-ID header in HTTP mode, and -reqlog appends an NDJSON request
// log (one api.RequestLogEntry per serviced item) so open-loop runs are
// sessionizable by cmd/traceql whichever target they drove.
//
// Usage examples:
//
//	loadgen -rates 2000,10000,50000 -duration 2s
//	loadgen -mode http -url http://localhost:8377 -rate 5000 -batch 16
//	loadgen -fit "clips=576,theta=0.27,clients=8,sess=10,think=2000,gap=60000" -duration 2s -reqlog run.ndjson
//	loadgen -check
//
// Per rate point it prints offered load, achieved throughput, p50/p99/p999
// latency and the shed/degraded rates; -json archives the table for
// cmd/benchcmp.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mediacache/internal/api"
	"mediacache/internal/cacheclient"
	"mediacache/internal/core"
	"mediacache/internal/fault"
	"mediacache/internal/media"
	_ "mediacache/internal/policy/all" // register the policy catalogue
	"mediacache/internal/shard"
	"mediacache/internal/vtime"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
}

// options collects the parsed CLI configuration.
type options struct {
	mode      string
	url       string
	policy    string
	ratio     float64
	shards    int
	seed      uint64
	fetchLat  time.Duration
	errorRate float64
	spec      workload.Spec
	fit       *workload.FitSpec // non-nil: session-paced replay of a fitted spec
	ranges    bool
	clients   int
	rates     []float64
	duration  time.Duration
	batch     int
	maxOut    int
	jsonPath  string
	check     bool
	// reqlog receives the NDJSON request log (-reqlog); nil disables it.
	// reqSeq is the file-global arrival tick shared across rate points.
	reqlog *json.Encoder
	reqSeq *int64
}

// plan is the precomputed reference stream of one sweep target: the
// unified event sequence, the per-arrival client identities, and (in -fit
// mode) the scheduled arrival times.
type plan struct {
	repo   *media.Repository
	events []workload.Request
	ids    []string                // client identity per arrival
	timed  []workload.TimedRequest // non-nil in -fit mode; parallel to events
}

// point is one rate point's outcome — the row the table and the JSON
// archive both render.
type point struct {
	RateHz      float64 `json:"rateHz"`      // offered arrival rate
	Offered     int     `json:"offered"`     // requests scheduled
	Completed   int     `json:"completed"`   // requests serviced
	Shed        int     `json:"shed"`        // arrivals dropped (bound hit or 429)
	Degraded    int     `json:"degraded"`    // serviced as miss-degraded
	Seconds     float64 `json:"seconds"`     // wall time of the point
	AchievedHz  float64 `json:"achievedHz"`  // completed / seconds
	P50Micros   float64 `json:"p50Micros"`   // latency percentiles, scheduled
	P99Micros   float64 `json:"p99Micros"`   // arrival to completion (includes
	P999Micros  float64 `json:"p999Micros"`  // queueing delay: no coordinated omission)
	HitRate     float64 `json:"hitRate"`     // of completed requests
	BatchSize   int     `json:"batchSize"`   // items per arrival
	OutstandMax int     `json:"outstandMax"` // concurrency bound
}

// archive is the -json output document.
type archive struct {
	Tool     string  `json:"tool"` // "loadgen": benchcmp dispatches on this
	Mode     string  `json:"mode"`
	Workload string  `json:"workload"`
	Policy   string  `json:"policy"`
	Shards   int     `json:"shards"`
	Seed     uint64  `json:"seed"`
	Points   []point `json:"points"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	mode := fs.String("mode", "pool", "target: \"pool\" (in-process) or \"http\"")
	url := fs.String("url", "", "server base URL for -mode http")
	policy := fs.String("policy", "greedydual", "cache policy for -mode pool")
	ratio := fs.Float64("ratio", 0.125, "cache size as a fraction of the repository")
	shards := fs.Int("shards", 4, "cache shards for -mode pool")
	seed := fs.Uint64("seed", 42, "seed for workload, faults and jitter")
	fetchLat := fs.Duration("fetchlat", 100*time.Microsecond, "simulated fetch latency per miss (-mode pool)")
	errorRate := fs.Float64("error-rate", 0, "probability a simulated fetch fails (-mode pool)")
	spec := fs.String("workload", "zipf=0.271", "workload spec: zipf=THETA[,SHIFTxREQUESTS...]")
	fitFlag := fs.String("fit", "", "replay a fitted session spec from traceql -fit at its own arrival schedule (overrides -workload/-rate/-batch)")
	ranges := fs.Bool("ranges", false, "mix in partial-content requests (-mode pool)")
	clients := fs.Int("clients", 8, "distinct client identities stamped round-robin per arrival (X-Client-ID, -reqlog)")
	reqlogPath := fs.String("reqlog", "", "append an NDJSON request log (one api.RequestLogEntry per serviced item) to this file, for cmd/traceql (\"\" disables, \"-\" = stdout)")
	rate := fs.Float64("rate", 10000, "offered load in requests/second")
	ratesFlag := fs.String("rates", "", "comma-separated sweep of offered rates (overrides -rate)")
	duration := fs.Duration("duration", 2*time.Second, "offered duration per rate point")
	batch := fs.Int("batch", 1, "items per arrival; >1 uses the batched request API")
	maxOut := fs.Int("maxout", 256, "outstanding-arrival bound; arrivals beyond it shed")
	jsonPath := fs.String("json", "", "archive the results table as JSON to this file")
	check := fs.Bool("check", false, "short fixed-seed smoke run asserting throughput and stats identities")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opt := options{
		mode: *mode, url: *url, policy: *policy, ratio: *ratio, shards: *shards,
		seed: *seed, fetchLat: *fetchLat, errorRate: *errorRate, ranges: *ranges,
		clients: *clients, duration: *duration, batch: *batch, maxOut: *maxOut,
		jsonPath: *jsonPath, check: *check,
	}
	parsed, err := workload.ParseSpec(*spec)
	if err != nil {
		return err
	}
	opt.spec = parsed
	if *fitFlag != "" {
		if *ranges {
			return fmt.Errorf("-fit carries its own range mix; drop -ranges")
		}
		fit, err := workload.ParseFit(*fitFlag)
		if err != nil {
			return err
		}
		opt.fit = &fit
		// The fitted spec paces itself: one point, one item per arrival.
		opt.rates = []float64{0}
		opt.batch = 1
	}
	if *ratesFlag != "" {
		if opt.fit != nil {
			return fmt.Errorf("-fit replays the spec's own arrival schedule; drop -rates")
		}
		for _, f := range strings.Split(*ratesFlag, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || v <= 0 {
				return fmt.Errorf("bad rate %q in -rates", f)
			}
			opt.rates = append(opt.rates, v)
		}
	} else if opt.fit == nil {
		opt.rates = []float64{*rate}
	}
	if opt.batch < 1 {
		opt.batch = 1
	}
	if opt.maxOut < 1 {
		opt.maxOut = 1
	}
	if opt.clients < 1 {
		opt.clients = 1
	}
	if *reqlogPath != "" {
		w := io.Writer(os.Stdout)
		if *reqlogPath != "-" {
			f, err := os.OpenFile(*reqlogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("opening reqlog: %w", err)
			}
			defer f.Close()
			w = f
		}
		opt.reqlog = json.NewEncoder(w)
		opt.reqSeq = new(int64)
	}
	if opt.check {
		return runCheck(out, opt)
	}
	return runSweep(out, opt)
}

// runSweep executes every rate point against one fresh target per point (so
// points don't inherit each other's cache state) and renders the table.
func runSweep(out io.Writer, opt options) error {
	var points []point
	var peerServed uint64
	for _, rateHz := range opt.rates {
		tgt, pl, err := newTarget(opt)
		if err != nil {
			return err
		}
		n := int(rateHz * opt.duration.Seconds())
		if opt.fit != nil {
			// The fitted spec paces itself; the offered rate is whatever
			// its session structure implies over the duration.
			n = len(pl.events)
			rateHz = float64(n) / opt.duration.Seconds()
		}
		if n < 1 {
			n = 1
		}
		p, err := openLoop(tgt, opt, rateHz, n, pl)
		if err != nil {
			return err
		}
		if ht, ok := tgt.(*httpTarget); ok {
			peerServed += ht.peerServed.Load()
		}
		points = append(points, p)
	}
	writeTable(out, points)
	if opt.mode == "http" {
		writeClusterCounters(out, opt, peerServed)
	}
	if opt.jsonPath != "" {
		wl := opt.spec.String()
		if opt.fit != nil {
			wl = opt.fit.String()
		}
		doc := archive{
			Tool: "loadgen", Mode: opt.mode, Workload: wl,
			Policy: opt.policy, Shards: opt.shards, Seed: opt.seed, Points: points,
		}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(opt.jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "archived %d points to %s\n", len(points), opt.jsonPath)
	}
	return nil
}

// writeClusterCounters appends the cooperative-tier line after an HTTP
// sweep: the peer-served responses the drivers observed plus the server's
// own peer/hedge/digest counters from GET /v1/cluster. Standalone servers
// answer 404 there, which silently skips the line — the table is unchanged
// for every pre-cluster deployment.
func writeClusterCounters(out io.Writer, opt options, peerServed uint64) {
	c, err := cacheclient.New(cacheclient.Config{BaseURL: opt.url, MaxAttempts: 1, Seed: opt.seed})
	if err != nil {
		return
	}
	st, err := c.ClusterStatus(context.Background())
	if err != nil {
		return
	}
	fmt.Fprintf(out, "cluster %s: peer-served %d of this sweep; peerHits=%d peerMisses=%d peerErrors=%d hedges=%d hedgeWins=%d digestSkips=%d peers=%d\n",
		st.Node, peerServed, st.PeerHits, st.PeerMisses, st.PeerErrors,
		st.Hedges, st.HedgeWins, st.DigestSkips, len(st.Peers))
}

// writeTable renders the latency-vs-offered-load table.
func writeTable(out io.Writer, points []point) {
	fmt.Fprintf(out, "%12s %10s %12s %10s %10s %10s %7s %9s %8s\n",
		"rate(req/s)", "offered", "achieved/s", "p50(µs)", "p99(µs)", "p999(µs)",
		"shed%", "degraded%", "hit%")
	for _, p := range points {
		fmt.Fprintf(out, "%12.0f %10d %12.0f %10.0f %10.0f %10.0f %7.2f %9.2f %8.2f\n",
			p.RateHz, p.Offered, p.AchievedHz, p.P50Micros, p.P99Micros, p.P999Micros,
			100*float64(p.Shed)/float64(p.Offered),
			100*float64(p.Degraded)/math.Max(1, float64(p.Completed)),
			100*p.HitRate)
	}
}

// itemOutcome is what a target reports per serviced item.
type itemOutcome struct {
	outcome  string // engine outcome label, for the request log
	hit      bool
	degraded bool
	shed     bool // serviced-side shed (HTTP 429); counts shed, not completed
}

// target abstracts where the load goes. serve handles one arrival — batch
// items starting at trace position off — and reports per-item outcomes.
// finalStats returns the engine statistics when the target can see them
// (nil otherwise); used by -check.
type target interface {
	serve(off, n int) ([]itemOutcome, error)
	finalStats() *core.Stats
}

// openLoop offers n requests at rateHz against tgt: arrivals are scheduled
// at fixed interarrival times regardless of completions, each admitted
// arrival is serviced on its own goroutine bounded by opt.maxOut, and an
// arrival that would exceed the bound is shed — the open-loop analogue of a
// full accept queue. Latency is measured from the scheduled arrival time,
// so dispatch lag counts against the system, not the generator.
func openLoop(tgt target, opt options, rateHz float64, n int, pl *plan) (point, error) {
	arrivals := (n + opt.batch - 1) / opt.batch
	interarrival := time.Duration(float64(opt.batch) * float64(time.Second) / rateHz)
	// arrivalAt schedules arrival i: the fitted spec's own inter-arrival
	// structure in -fit mode, a fixed-rate clock otherwise.
	arrivalAt := func(start time.Time, i int) time.Time {
		if pl.timed != nil {
			return start.Add(time.Duration(pl.timed[i].ArrivalMicros) * time.Microsecond)
		}
		return start.Add(time.Duration(i) * interarrival)
	}

	type sample struct {
		lat      time.Duration
		outcomes []itemOutcome
		err      error
	}
	samples := make([]sample, arrivals)
	slots := make(chan struct{}, opt.maxOut)
	var wg sync.WaitGroup
	shedArrivals := 0
	start := time.Now()
	for i := 0; i < arrivals; i++ {
		scheduled := arrivalAt(start, i)
		if d := time.Until(scheduled); d > 0 {
			time.Sleep(d)
		}
		select {
		case slots <- struct{}{}:
		default:
			shedArrivals++
			samples[i].outcomes = nil
			continue
		}
		wg.Add(1)
		go func(i int, scheduled time.Time) {
			defer wg.Done()
			defer func() { <-slots }()
			off := i * opt.batch
			count := opt.batch
			if off+count > n {
				count = n - off
			}
			outcomes, err := tgt.serve(off, count)
			samples[i] = sample{lat: time.Since(scheduled), outcomes: outcomes, err: err}
		}(i, scheduled)
	}
	wg.Wait()
	elapsed := time.Since(start)

	p := point{
		RateHz: rateHz, Offered: n, Seconds: elapsed.Seconds(),
		BatchSize: opt.batch, OutstandMax: opt.maxOut,
	}
	var lats []time.Duration
	hits := 0
	for i, s := range samples {
		if s.err != nil {
			return point{}, s.err
		}
		if s.outcomes == nil { // shed at the generator
			off := i * opt.batch
			count := opt.batch
			if off+count > n {
				count = n - off
			}
			p.Shed += count
			continue
		}
		lats = append(lats, s.lat)
		for _, o := range s.outcomes {
			if o.shed {
				p.Shed++
				continue
			}
			p.Completed++
			if o.hit {
				hits++
			}
			if o.degraded {
				p.Degraded++
			}
		}
	}
	_ = shedArrivals
	if opt.reqlog != nil {
		// The log is written after the point completes, in arrival order, so
		// ticks in the file are strictly increasing. Generator-side sheds
		// never became requests and are not logged.
		for i, s := range samples {
			if s.outcomes == nil {
				continue
			}
			wall := arrivalAt(start, i).UnixMicro()
			for k, o := range s.outcomes {
				ev := pl.events[i*opt.batch+k]
				*opt.reqSeq++
				e := api.RequestLogEntry{
					Tick:          *opt.reqSeq,
					WallMicros:    wall,
					Client:        pl.ids[i],
					Clip:          ev.Clip,
					SizeBytes:     int64(pl.repo.Clip(ev.Clip).Size),
					Outcome:       o.outcome,
					Hit:           o.hit,
					Status:        200,
					LatencyMicros: s.lat.Microseconds(),
				}
				if opt.mode == "pool" {
					e.Policy = opt.policy
				}
				if ev.Ranged {
					e.StartBytes = int64(ev.Start)
					e.LengthBytes = int64(ev.Length)
				}
				if o.shed {
					e.Status = 429
				}
				if err := opt.reqlog.Encode(e); err != nil {
					return point{}, fmt.Errorf("writing reqlog: %w", err)
				}
			}
		}
	}
	if p.Completed > 0 {
		p.HitRate = float64(hits) / float64(p.Completed)
	}
	p.AchievedHz = float64(p.Completed) / elapsed.Seconds()
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	p.P50Micros = percentileMicros(lats, 0.50)
	p.P99Micros = percentileMicros(lats, 0.99)
	p.P999Micros = percentileMicros(lats, 0.999)
	return p, nil
}

// percentileMicros reads the q-quantile of a sorted latency slice, exact
// (nearest-rank), in microseconds.
func percentileMicros(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Microsecond)
}

// newTarget builds the configured load target with a freshly generated
// reference plan of at least the sweep's largest point.
func newTarget(opt options) (target, *plan, error) {
	repo := media.PaperRepository()
	pl, err := buildPlan(repo, opt)
	if err != nil {
		return nil, nil, err
	}
	switch opt.mode {
	case "pool":
		tgt, err := newPoolTarget(repo, opt, pl)
		return tgt, pl, err
	case "http":
		if opt.url == "" {
			return nil, nil, fmt.Errorf("-mode http requires -url")
		}
		if opt.ranges || (opt.fit != nil && opt.fit.RangedFrac > 0) {
			return nil, nil, fmt.Errorf("ranged requests are only supported with -mode pool")
		}
		tgt, err := newHTTPTarget(opt, pl)
		return tgt, pl, err
	default:
		return nil, nil, fmt.Errorf("bad -mode %q: want \"pool\" or \"http\"", opt.mode)
	}
}

// fitEventCap bounds a -fit plan: a spec whose session structure implies
// more arrivals than this over -duration is truncated rather than draining
// the heap.
const fitEventCap = 2_000_000

// buildPlan generates the unified reference stream through the workload
// Source face: the spec's schedule phase by phase (popularity churn), a
// range mix, or a fitted session spec replayed on its own arrival clock.
func buildPlan(repo *media.Repository, opt options) (*plan, error) {
	if opt.fit != nil {
		src, err := workload.NewSessionSource(*opt.fit, repo, opt.seed)
		if err != nil {
			return nil, err
		}
		horizon := opt.duration.Microseconds()
		pl := &plan{repo: repo}
		for len(pl.timed) < fitEventCap {
			tr, _ := src.NextTimed()
			if tr.ArrivalMicros > horizon && len(pl.timed) > 0 {
				break
			}
			pl.timed = append(pl.timed, tr)
			pl.events = append(pl.events, tr.Request)
			pl.ids = append(pl.ids, tr.Client)
		}
		return pl, nil
	}

	n := 0
	for _, r := range opt.rates {
		if pn := int(r * opt.duration.Seconds()); pn > n {
			n = pn
		}
	}
	if n < 1 {
		n = 1
	}
	dist, err := zipf.New(repo.N(), opt.spec.Theta)
	if err != nil {
		return nil, err
	}
	var src workload.Source
	if opt.ranges {
		rgen, err := workload.NewRangeGenerator(repo, dist, opt.seed, workload.DefaultRangeConfig())
		if err != nil {
			return nil, err
		}
		src = rgen.Source()
	} else {
		gen, err := workload.NewGenerator(dist, opt.seed)
		if err != nil {
			return nil, err
		}
		schedule := opt.spec.Schedule
		if len(schedule) == 0 {
			schedule = workload.Schedule{{Shift: 0, Requests: n}}
		}
		// Cycle the schedule until it covers the sweep, so short schedules
		// still drive long points; Take caps the stream at n.
		repeated := make(workload.Schedule, 0, len(schedule))
		for total := 0; total < n; {
			for _, ph := range schedule {
				repeated = append(repeated, ph)
				total += ph.Requests
				if total >= n {
					break
				}
			}
		}
		src, err = workload.NewScheduleSource(gen, repeated)
		if err != nil {
			return nil, err
		}
	}
	pl := &plan{repo: repo, events: workload.Take(make([]workload.Request, 0, n), src, n)}
	arrivals := (n + opt.batch - 1) / opt.batch
	pl.ids = make([]string, arrivals)
	for i := range pl.ids {
		pl.ids[i] = "w" + strconv.Itoa(i%opt.clients)
	}
	return pl, nil
}

// poolTarget drives an in-process shard pool, the configuration the
// lock-reduced read path is built for.
type poolTarget struct {
	pool   *shard.Pool
	events []workload.Request
	batch  int
}

func newPoolTarget(repo *media.Repository, opt options, pl *plan) (*poolTarget, error) {
	var injMu sync.Mutex
	var inj *fault.Injector
	if opt.errorRate > 0 {
		inj = fault.New(fault.Profile{ErrorRate: opt.errorRate}, opt.seed)
	}
	fetch := func(media.Clip, vtime.Time) error {
		if opt.fetchLat > 0 {
			time.Sleep(opt.fetchLat)
		}
		if inj != nil {
			injMu.Lock()
			f := inj.Next()
			injMu.Unlock()
			if f.Failed() {
				return fmt.Errorf("loadgen: injected fetch failure")
			}
		}
		return nil
	}
	cfg := shard.Config{
		Policy:   opt.policy,
		Repo:     repo,
		Capacity: repo.CacheSizeForRatio(opt.ratio),
		Seed:     opt.seed,
		Shards:   opt.shards,
	}
	if opt.ranges || (opt.fit != nil && opt.fit.RangedFrac > 0) {
		cfg.SegmentSize = 256 * media.MB
		cfg.PrefixSegments = 1
		cfg.SegmentFetch = func(clip media.Clip, seg int32, now vtime.Time) error {
			return fetch(clip, now)
		}
	} else {
		cfg.Fetch = fetch
	}
	pool, err := shard.New(cfg)
	if err != nil {
		return nil, err
	}
	return &poolTarget{pool: pool, events: pl.events, batch: opt.batch}, nil
}

func (t *poolTarget) serve(off, n int) ([]itemOutcome, error) {
	out := make([]itemOutcome, 0, n)
	if t.batch > 1 {
		items := make([]shard.BatchItem, n)
		for k := 0; k < n; k++ {
			ev := t.events[off+k]
			items[k] = shard.BatchItem{ID: ev.Clip, Ranged: ev.Ranged, Start: ev.Start, Length: ev.Length}
		}
		for _, r := range t.pool.RequestBatch(items) {
			if r.Err != nil {
				return nil, r.Err
			}
			out = append(out, itemOutcome{outcome: r.Outcome.String(), hit: r.Outcome.IsHit(), degraded: r.Outcome == core.MissDegraded})
		}
		return out, nil
	}
	for k := 0; k < n; k++ {
		ev := t.events[off+k]
		var (
			o   core.Outcome
			err error
		)
		if ev.Ranged {
			var res core.RangeResult
			res, err = t.pool.RequestRange(ev.Clip, ev.Start, ev.Length)
			o = res.Outcome
		} else {
			o, err = t.pool.Request(ev.Clip)
		}
		if err != nil {
			return nil, err
		}
		out = append(out, itemOutcome{outcome: o.String(), hit: o.IsHit(), degraded: o == core.MissDegraded})
	}
	return out, nil
}

func (t *poolTarget) finalStats() *core.Stats {
	st := t.pool.Stats()
	return &st
}

// httpTarget drives a running cacheserver through the resilient client,
// with retries disabled: an open-loop generator must observe failures, not
// paper over them with backoff. Each client identity gets its own
// cacheclient instance so every request carries that identity's
// X-Client-ID header — the server's -reqlog sessionizes per worker.
type httpTarget struct {
	clients map[string]*cacheclient.Client
	ids     []string // client identity per arrival
	events  []workload.Request
	batch   int
	// peerServed counts responses a clustered server attributed to a ring
	// peer (the wire peer field) — zero against standalone servers.
	peerServed atomic.Uint64
}

func newHTTPTarget(opt options, pl *plan) (*httpTarget, error) {
	clients := make(map[string]*cacheclient.Client)
	for _, id := range pl.ids {
		if _, ok := clients[id]; ok {
			continue
		}
		c, err := cacheclient.New(cacheclient.Config{
			BaseURL:     opt.url,
			MaxAttempts: 1,
			Seed:        opt.seed,
			ClientID:    id,
		})
		if err != nil {
			return nil, err
		}
		clients[id] = c
	}
	return &httpTarget{clients: clients, ids: pl.ids, events: pl.events, batch: opt.batch}, nil
}

func (t *httpTarget) serve(off, n int) ([]itemOutcome, error) {
	ctx := context.Background()
	client := t.clients[t.ids[off/t.batch]]
	out := make([]itemOutcome, 0, n)
	if t.batch > 1 {
		ids := make([]media.ClipID, n)
		for k := 0; k < n; k++ {
			ids[k] = t.events[off+k].Clip
		}
		items, err := client.GetBatch(ctx, ids)
		if err != nil {
			if shed, serr := shedStatus(err); shed {
				for k := 0; k < n; k++ {
					out = append(out, itemOutcome{shed: true})
				}
				return out, nil
			} else if serr != nil {
				return nil, serr
			}
			return nil, err
		}
		for _, it := range items {
			out = append(out, classifyHTTP(it.Status, it.Outcome, it.Hit))
		}
		return out, nil
	}
	for k := 0; k < n; k++ {
		clip, err := client.Clip(ctx, t.events[off+k].Clip)
		if err != nil {
			if shed, serr := shedStatus(err); shed {
				out = append(out, itemOutcome{shed: true})
				continue
			} else if serr != nil {
				return nil, serr
			}
			return nil, err
		}
		if clip.Peer != "" {
			t.peerServed.Add(1)
		}
		out = append(out, classifyHTTP(200, clip.Outcome, clip.Hit))
	}
	return out, nil
}

func (t *httpTarget) finalStats() *core.Stats { return nil }

// shedStatus classifies a client error: a 429 is load shedding (count it,
// keep offering), 5xx is a degraded transfer modeled server-side, anything
// else aborts the run.
func shedStatus(err error) (shed bool, fatal error) {
	var se *cacheclient.StatusError
	if !asStatusError(err, &se) {
		return false, err
	}
	switch {
	case se.Status == 429:
		return true, nil
	case se.Status >= 500:
		return false, nil // surfaced per item as degraded by the caller
	default:
		return false, err
	}
}

// classifyHTTP folds one served item's wire fields into an itemOutcome.
func classifyHTTP(status int, outcome string, hit bool) itemOutcome {
	if status == 429 {
		return itemOutcome{shed: true}
	}
	return itemOutcome{outcome: outcome, hit: hit, degraded: outcome == core.MissDegraded.String() || status >= 500}
}

// asStatusError is errors.As without importing errors twice in this file's
// hot path helpers.
func asStatusError(err error, target **cacheclient.StatusError) bool {
	for err != nil {
		if se, ok := err.(*cacheclient.StatusError); ok {
			*target = se
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// runCheck is the `make loadcheck` entry: a short fixed-seed pool run that
// must sustain nonzero throughput and leave the engine's statistics
// satisfying the counting and byte identities.
func runCheck(out io.Writer, opt options) error {
	opt.mode = "pool"
	opt.rates = []float64{20000}
	opt.duration = 500 * time.Millisecond
	opt.batch = 8
	opt.errorRate = 0.1
	opt.fetchLat = 50 * time.Microsecond

	tgt, pl, err := newTarget(opt)
	if err != nil {
		return err
	}
	n := int(opt.rates[0] * opt.duration.Seconds())
	p, err := openLoop(tgt, opt, opt.rates[0], n, pl)
	if err != nil {
		return err
	}
	writeTable(out, []point{p})
	if p.Completed == 0 || p.AchievedHz <= 0 {
		return fmt.Errorf("loadcheck: no throughput (completed %d)", p.Completed)
	}
	st := tgt.finalStats()
	if st == nil {
		return fmt.Errorf("loadcheck: target exposes no stats")
	}
	// Requests == Hits + MissCached + Bypassed + FetchFailed, with
	// MissCached the residual of the other counters — so the checkable form
	// is that the residual never underflows.
	if st.Hits+st.Bypassed+st.FetchFailed > st.Requests {
		return fmt.Errorf("loadcheck: counting identity violated: hits %d + bypassed %d + failed %d > requests %d",
			st.Hits, st.Bypassed, st.FetchFailed, st.Requests)
	}
	if got := st.BytesHit + st.BytesFetched + st.BytesFailed; got != st.BytesReferenced {
		return fmt.Errorf("loadcheck: byte identity violated: %v + %v + %v != %v",
			st.BytesHit, st.BytesFetched, st.BytesFailed, st.BytesReferenced)
	}
	if uint64(p.Completed) != st.Requests {
		return fmt.Errorf("loadcheck: driver completed %d requests, engine saw %d", p.Completed, st.Requests)
	}
	if st.FetchFailed == 0 {
		return fmt.Errorf("loadcheck: fault profile injected no failures")
	}
	fmt.Fprintf(out, "loadcheck ok: %d requests, %.0f req/s achieved, identities hold\n",
		p.Completed, p.AchievedHz)
	return nil
}

package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mediacache/internal/api"
	"mediacache/internal/trace"
)

func TestCheckMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-check"}, &buf); err != nil {
		t.Fatalf("check failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "loadcheck ok") {
		t.Fatalf("no ok line:\n%s", buf.String())
	}
}

func TestPoolSweepArchivesJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "load.json")
	var buf bytes.Buffer
	err := run([]string{
		"-rates", "2000,4000", "-duration", "100ms", "-batch", "4",
		"-error-rate", "0.05", "-json", path,
	}, &buf)
	if err != nil {
		t.Fatalf("sweep failed: %v\n%s", err, buf.String())
	}
	var doc archive
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Tool != "loadgen" || len(doc.Points) != 2 {
		t.Fatalf("archive: tool %q, %d points", doc.Tool, len(doc.Points))
	}
	for _, p := range doc.Points {
		if p.Completed == 0 || p.AchievedHz <= 0 {
			t.Fatalf("point %v produced no throughput: %+v", p.RateHz, p)
		}
		if p.P50Micros <= 0 || p.P999Micros < p.P99Micros || p.P99Micros < p.P50Micros {
			t.Fatalf("point %v has inconsistent percentiles: %+v", p.RateHz, p)
		}
	}
}

func TestRangedPoolSweep(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-ranges", "-rate", "2000", "-duration", "100ms", "-batch", "2"}, &buf)
	if err != nil {
		t.Fatalf("ranged sweep failed: %v\n%s", err, buf.String())
	}
}

func TestChurnSchedule(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-workload", "zipf=0.271,0x100,200x100", "-rate", "2000", "-duration", "100ms"}, &buf)
	if err != nil {
		t.Fatalf("churn sweep failed: %v\n%s", err, buf.String())
	}
}

// TestHTTPModeBatched drives the http target against a stub serving the
// batch route, asserting batched arrivals route through POST /v1/batch.
func TestHTTPModeBatched(t *testing.T) {
	var batches, singles atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if r.Method == http.MethodPost && r.URL.Path == "/v1/batch" {
			batches.Add(1)
			var req api.BatchRequest
			json.NewDecoder(r.Body).Decode(&req)
			resp := api.BatchResponse{Items: make([]api.BatchItemResult, len(req.Items))}
			for i, it := range req.Items {
				resp.Items[i] = api.BatchItemResult{Clip: it.Clip, Status: 200, Outcome: "hit", Hit: true}
			}
			json.NewEncoder(w).Encode(resp)
			return
		}
		if r.URL.Path == "/v1/cluster" {
			// Standalone servers have no cluster route; the sweep's final
			// counter scrape must tolerate the 404 silently.
			http.Error(w, `{"error":"no cluster"}`, http.StatusNotFound)
			return
		}
		singles.Add(1)
		json.NewEncoder(w).Encode(api.Clip{Clip: 1, Outcome: "hit", Hit: true})
	}))
	defer ts.Close()

	var buf bytes.Buffer
	err := run([]string{"-mode", "http", "-url", ts.URL, "-rate", "1000", "-duration", "100ms", "-batch", "8"}, &buf)
	if err != nil {
		t.Fatalf("http sweep failed: %v\n%s", err, buf.String())
	}
	if batches.Load() == 0 {
		t.Fatal("no batch requests reached the server")
	}
	if singles.Load() != 0 {
		t.Fatalf("%d arrivals bypassed the batch route", singles.Load())
	}
}

// TestReqLogSessionizable drives a fitted session spec against the pool and
// asserts the client-side request log carries everything traceql needs:
// strictly increasing ticks, the spec's client identities, outcomes and
// sizes, and per-client arrival times that sessionize.
func TestReqLogSessionizable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ndjson")
	var buf bytes.Buffer
	err := run([]string{
		"-fit", "clips=100,theta=0.27,clients=3,sess=5,think=500,gap=20000",
		"-duration", "150ms", "-reqlog", path, "-seed", "7",
	}, &buf)
	if err != nil {
		t.Fatalf("fit sweep failed: %v\n%s", err, buf.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := trace.ReadNDJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 10 {
		t.Fatalf("only %d events logged", len(events))
	}
	clients := map[string]bool{}
	for i, e := range events {
		if e.Tick != int64(i+1) {
			t.Fatalf("event %d tick = %d, want %d", i, e.Tick, i+1)
		}
		if e.Client == "" || e.Outcome == "" || e.SizeBytes == 0 || e.WallMicros == 0 || e.Policy == "" {
			t.Fatalf("event %d missing stamps: %+v", i, e)
		}
		clients[e.Client] = true
	}
	if len(clients) != 3 {
		t.Fatalf("saw %d clients, want 3: %v", len(clients), clients)
	}
	if sessions := trace.Sessionize(events, 5000); len(sessions) < len(clients) {
		t.Fatalf("only %d sessions over %d clients", len(sessions), len(clients))
	}
}

// TestHTTPClientIDs asserts http-mode arrivals carry round-robin
// X-Client-ID headers across -clients identities.
func TestHTTPClientIDs(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]int{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/cluster" {
			http.Error(w, `{"error":"no cluster"}`, http.StatusNotFound)
			return
		}
		mu.Lock()
		seen[r.Header.Get(api.ClientIDHeader)]++
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(api.Clip{Clip: 1, Outcome: "hit", Hit: true})
	}))
	defer ts.Close()

	var buf bytes.Buffer
	err := run([]string{"-mode", "http", "-url", ts.URL, "-rate", "1000",
		"-duration", "100ms", "-clients", "4"}, &buf)
	if err != nil {
		t.Fatalf("http sweep failed: %v\n%s", err, buf.String())
	}
	mu.Lock()
	defer mu.Unlock()
	delete(seen, "") // the final cluster-status scrape is unnamed
	for _, id := range []string{"w0", "w1", "w2", "w3"} {
		if seen[id] == 0 {
			t.Errorf("no requests carried client ID %s (saw %v)", id, seen)
		}
	}
	if len(seen) != 4 {
		t.Errorf("expected 4 client identities, saw %v", seen)
	}
}

func TestFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-mode", "http"}, &buf); err == nil {
		t.Error("http mode without -url should fail")
	}
	if err := run([]string{"-mode", "bogus"}, &buf); err == nil {
		t.Error("unknown mode should fail")
	}
	if err := run([]string{"-rates", "nope"}, &buf); err == nil {
		t.Error("bad -rates should fail")
	}
	if err := run([]string{"-fit", "clips=0"}, &buf); err == nil {
		t.Error("bad -fit spec should fail")
	}
	if err := run([]string{"-fit", "clips=10,theta=0.2,clients=1,sess=1,think=1,gap=1", "-ranges"}, &buf); err == nil {
		t.Error("-fit with -ranges should fail")
	}
	if err := run([]string{"-fit", "clips=10,theta=0.2,clients=1,sess=1,think=1,gap=1", "-rates", "100"}, &buf); err == nil {
		t.Error("-fit with -rates should fail")
	}
}

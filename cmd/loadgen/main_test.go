package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"mediacache/internal/api"
)

func TestCheckMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-check"}, &buf); err != nil {
		t.Fatalf("check failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "loadcheck ok") {
		t.Fatalf("no ok line:\n%s", buf.String())
	}
}

func TestPoolSweepArchivesJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "load.json")
	var buf bytes.Buffer
	err := run([]string{
		"-rates", "2000,4000", "-duration", "100ms", "-batch", "4",
		"-error-rate", "0.05", "-json", path,
	}, &buf)
	if err != nil {
		t.Fatalf("sweep failed: %v\n%s", err, buf.String())
	}
	var doc archive
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Tool != "loadgen" || len(doc.Points) != 2 {
		t.Fatalf("archive: tool %q, %d points", doc.Tool, len(doc.Points))
	}
	for _, p := range doc.Points {
		if p.Completed == 0 || p.AchievedHz <= 0 {
			t.Fatalf("point %v produced no throughput: %+v", p.RateHz, p)
		}
		if p.P50Micros <= 0 || p.P999Micros < p.P99Micros || p.P99Micros < p.P50Micros {
			t.Fatalf("point %v has inconsistent percentiles: %+v", p.RateHz, p)
		}
	}
}

func TestRangedPoolSweep(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-ranges", "-rate", "2000", "-duration", "100ms", "-batch", "2"}, &buf)
	if err != nil {
		t.Fatalf("ranged sweep failed: %v\n%s", err, buf.String())
	}
}

func TestChurnSchedule(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-workload", "zipf=0.271,0x100,200x100", "-rate", "2000", "-duration", "100ms"}, &buf)
	if err != nil {
		t.Fatalf("churn sweep failed: %v\n%s", err, buf.String())
	}
}

// TestHTTPModeBatched drives the http target against a stub serving the
// batch route, asserting batched arrivals route through POST /v1/batch.
func TestHTTPModeBatched(t *testing.T) {
	var batches, singles atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if r.Method == http.MethodPost && r.URL.Path == "/v1/batch" {
			batches.Add(1)
			var req api.BatchRequest
			json.NewDecoder(r.Body).Decode(&req)
			resp := api.BatchResponse{Items: make([]api.BatchItemResult, len(req.Items))}
			for i, it := range req.Items {
				resp.Items[i] = api.BatchItemResult{Clip: it.Clip, Status: 200, Outcome: "hit", Hit: true}
			}
			json.NewEncoder(w).Encode(resp)
			return
		}
		if r.URL.Path == "/v1/cluster" {
			// Standalone servers have no cluster route; the sweep's final
			// counter scrape must tolerate the 404 silently.
			http.Error(w, `{"error":"no cluster"}`, http.StatusNotFound)
			return
		}
		singles.Add(1)
		json.NewEncoder(w).Encode(api.Clip{Clip: 1, Outcome: "hit", Hit: true})
	}))
	defer ts.Close()

	var buf bytes.Buffer
	err := run([]string{"-mode", "http", "-url", ts.URL, "-rate", "1000", "-duration", "100ms", "-batch", "8"}, &buf)
	if err != nil {
		t.Fatalf("http sweep failed: %v\n%s", err, buf.String())
	}
	if batches.Load() == 0 {
		t.Fatal("no batch requests reached the server")
	}
	if singles.Load() != 0 {
		t.Fatalf("%d arrivals bypassed the batch route", singles.Load())
	}
}

func TestFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-mode", "http"}, &buf); err == nil {
		t.Error("http mode without -url should fail")
	}
	if err := run([]string{"-mode", "bogus"}, &buf); err == nil {
		t.Error("unknown mode should fail")
	}
	if err := run([]string{"-rates", "nope"}, &buf); err == nil {
		t.Error("bad -rates should fail")
	}
}

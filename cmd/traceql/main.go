// Command traceql is the sessionized analytics CLI over recorded request
// logs (ISSUE 10): it ingests either the NDJSON access log written by
// `cacheserver -reqlog` / `loadgen -reqlog` or a CSV workload trace
// (v1 or v2, auto-detected), sessionizes per client, and answers
// filter/group-by/aggregate queries. `-fit` closes the measure→model→replay
// loop by distilling the log into a `fit=` workload spec that
// `loadgen -fit`, `cachesim -fit` and `tracegen -fit` replay.
//
// Usage examples:
//
//	traceql -in run.ndjson -report sessions
//	traceql -in run.ndjson -q "from=events;group=outcome;agg=count,meanlat,p99lat"
//	traceql -in trace.csv -q "from=sessions;group=client;agg=count,meanlen,hitrate" -json
//	traceql -in run.ndjson -fit | xargs -I{} cachesim -policy greedydual -fit "{}"
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"mediacache/internal/texttable"
	"mediacache/internal/trace"
	"mediacache/internal/workload"
)

// reports are the canned queries for the common questions; -report runs one
// by name. Each is in the same grammar -q accepts, so every report is also
// a starting point for a custom query.
var reports = map[string]string{
	"sessions": "from=sessions;group=client;agg=count,meanlen,hitrate,p50gap",
	"clients":  "from=events;group=client;agg=count,hits,hitrate,p99lat",
	"clips":    "from=events;group=clip;agg=count,hitrate;top=10",
	"outcomes": "from=events;group=outcome;agg=count,meanlat,p99lat",
	"latency":  "from=events;agg=count,meanlat,p50lat,p90lat,p99lat,maxlat",
	"startup":  "from=sessions;agg=count,meanlen,meanstartup,p50startup,p99startup",
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "traceql: %v\n", err)
		os.Exit(1)
	}
}

// run executes the CLI against args, writing output to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("traceql", flag.ContinueOnError)
	in := fs.String("in", "", `input log: NDJSON reqlog or CSV trace, auto-detected ("-" = stdin)`)
	gapFlag := fs.Int64("gap", 0,
		"sessionization idle gap in microseconds (0 = 30s default; a query's own gap clause wins)")
	query := fs.String("q", "", `raw query, e.g. "from=events;group=outcome;agg=count,p99lat"`)
	report := fs.String("report", "", "named report: "+strings.Join(reportNames(), ", "))
	fit := fs.Bool("fit", false, "distill the log into a replayable fit= workload spec")
	jsonOut := fs.Bool("json", false, "emit JSON instead of an aligned table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}
	modes := 0
	for _, on := range []bool{*query != "", *report != "", *fit} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return fmt.Errorf("exactly one of -q, -report or -fit is required")
	}

	events, err := readLog(*in)
	if err != nil {
		return err
	}

	if *fit {
		spec, err := trace.Fit(events, *gapFlag)
		if err != nil {
			return err
		}
		if *jsonOut {
			return json.NewEncoder(out).Encode(map[string]any{
				"events": len(events),
				"fit":    spec.String(),
			})
		}
		_, err = fmt.Fprintln(out, spec.String())
		return err
	}

	qs := *query
	if *report != "" {
		var ok bool
		if qs, ok = reports[*report]; !ok {
			return fmt.Errorf("unknown report %q (want %s)", *report, strings.Join(reportNames(), ", "))
		}
	}
	q, err := trace.ParseQuery(qs)
	if err != nil {
		return err
	}
	// The -gap flag is the fallback threshold; an explicit gap clause in the
	// query overrides it.
	if q.From == "sessions" && q.GapMicros == 0 {
		q.GapMicros = *gapFlag
	}
	res, err := trace.Run(events, q)
	if err != nil {
		return err
	}
	if *jsonOut {
		return json.NewEncoder(out).Encode(map[string]any{
			"query":   q.String(),
			"events":  len(events),
			"columns": res.Columns,
			"rows":    res.Rows,
		})
	}
	fmt.Fprintf(out, "query   %s\n", q.String())
	fmt.Fprintf(out, "events  %d\n\n", len(events))
	rows := [][]string{res.Columns}
	for _, r := range res.Rows {
		cells := make([]string, len(r))
		for i, v := range r {
			cells[i] = trace.FormatCell(v)
		}
		rows = append(rows, cells)
	}
	return texttable.RenderRows(out, rows)
}

// readLog loads events from path, sniffing the format from the first byte:
// a workload trace CSV opens with its '#name' header; anything else is
// treated as an NDJSON reqlog.
func readLog(path string) ([]trace.Event, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	br := bufio.NewReader(r)
	head, err := br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("empty input: %w", err)
	}
	if head[0] == '#' {
		t, err := workload.ReadCSV(br)
		if err != nil {
			return nil, err
		}
		return trace.FromTrace(t), nil
	}
	return trace.ReadNDJSON(br)
}

// reportNames lists the canned reports in stable order for -help and errors.
func reportNames() []string {
	names := make([]string, 0, len(reports))
	for name := range reports {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

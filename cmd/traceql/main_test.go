package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mediacache/internal/api"
	"mediacache/internal/workload"
)

// writeLog writes entries as an NDJSON reqlog fixture and returns the path.
func writeLog(t *testing.T, entries []api.RequestLogEntry) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.ndjson")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for _, e := range entries {
		if err := enc.Encode(e); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

// fixture is a handcrafted two-client log: c0 runs two sessions (split by a
// 60s gap), c1 one; 3 hits over 5 requests; latencies 100..500µs.
func fixture() []api.RequestLogEntry {
	return []api.RequestLogEntry{
		{Tick: 1, WallMicros: 1_000_000, Client: "c0", Clip: 1, Outcome: "hit", Hit: true, Status: 200, LatencyMicros: 100},
		{Tick: 2, WallMicros: 1_050_000, Client: "c0", Clip: 2, Outcome: "miss-cached", Status: 200, LatencyMicros: 500},
		{Tick: 3, WallMicros: 2_000_000, Client: "c1", Clip: 1, Outcome: "hit", Hit: true, Status: 200, LatencyMicros: 200},
		{Tick: 4, WallMicros: 61_100_000, Client: "c0", Clip: 1, Outcome: "hit", Hit: true, Status: 200, LatencyMicros: 300},
		{Tick: 5, WallMicros: 61_200_000, Client: "c0", Clip: 3, Outcome: "miss-bypassed", Status: 200, LatencyMicros: 400},
	}
}

// TestQueryGolden pins the full aligned output of a grouped event query
// over the handcrafted fixture.
func TestQueryGolden(t *testing.T) {
	path := writeLog(t, fixture())
	var out strings.Builder
	err := run([]string{"-in", path, "-q", "from=events;group=outcome;agg=count,hitrate,p99lat"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	want := "query   from=events;group=outcome;agg=count,hitrate,p99lat\n" +
		"events  5\n" +
		"\n" +
		"outcome        count  hitrate  p99lat\n" +
		"hit            3      1.0000   300\n" +
		"miss-bypassed  1      0.0000   400\n" +
		"miss-cached    1      0.0000   500\n"
	if out.String() != want {
		t.Errorf("output mismatch:\ngot:\n%s\nwant:\n%s", out.String(), want)
	}
}

// TestSessionsReport checks the canned sessions report sessionizes the
// fixture: c0 splits into two sessions at the default 30s gap, c1 has one.
func TestSessionsReport(t *testing.T) {
	path := writeLog(t, fixture())
	var out strings.Builder
	if err := run([]string{"-in", path, "-report", "sessions"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"client", "meanlen", "c0      2", "c1      1"} {
		if !strings.Contains(s, want) {
			t.Errorf("sessions report missing %q:\n%s", want, s)
		}
	}
}

// TestGapFlag checks -gap overrides the default threshold: at a 100s gap
// c0's two bursts merge into one session.
func TestGapFlag(t *testing.T) {
	path := writeLog(t, fixture())
	var out strings.Builder
	err := run([]string{"-in", path, "-gap", "100000000",
		"-q", "from=sessions;group=client;agg=count"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "c0      1") {
		t.Errorf("100s gap should merge c0's sessions:\n%s", out.String())
	}
}

// TestJSONOutput checks -json emits a machine-readable result document.
func TestJSONOutput(t *testing.T) {
	path := writeLog(t, fixture())
	var out strings.Builder
	err := run([]string{"-in", path, "-json", "-q", "from=events;agg=count,hits"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Query   string   `json:"query"`
		Events  int      `json:"events"`
		Columns []string `json:"columns"`
		Rows    [][]any  `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if doc.Events != 5 || len(doc.Rows) != 1 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Rows[0][0].(float64) != 5 || doc.Rows[0][1].(float64) != 3 {
		t.Fatalf("count/hits row = %v", doc.Rows[0])
	}
}

// TestReportsRunOnTraceInput generates a session trace through the fit
// source, writes it as CSV (exercising the input sniffer's trace branch),
// and checks every canned report runs over it.
func TestReportsRunOnTraceInput(t *testing.T) {
	spec, err := workload.ParseFit("clips=50,theta=0.3,clients=3,sess=6,think=1000,gap=40000")
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewSessionSource(spec, nil, 9)
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.RecordTimed("fixture", src, 50, 300)
	path := filepath.Join(t.TempDir(), "t.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	for name := range reports {
		var out strings.Builder
		if err := run([]string{"-in", path, "-report", name}, &out); err != nil {
			t.Errorf("report %s failed: %v", name, err)
		}
		if !strings.Contains(out.String(), "events  300") {
			t.Errorf("report %s did not see the trace:\n%s", name, out.String())
		}
	}
}

// TestFitRoundTrip distills a synthetic session trace and checks the
// recovered spec replays the generating parameters.
func TestFitRoundTrip(t *testing.T) {
	spec, err := workload.ParseFit("clips=80,theta=0.4,clients=4,sess=8,think=2000,gap=90000000")
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewSessionSource(spec, nil, 21)
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.RecordTimed("fixture", src, 80, 4000)
	path := filepath.Join(t.TempDir(), "t.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out strings.Builder
	if err := run([]string{"-in", path, "-fit"}, &out); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(out.String())
	if !strings.HasPrefix(line, "fit=") {
		t.Fatalf("fit output %q lacks the fit= prefix", line)
	}
	got, err := workload.ParseFit(line)
	if err != nil {
		t.Fatalf("fit output does not re-parse: %v", err)
	}
	if got.Clients != spec.Clients {
		t.Errorf("fitted clients = %d, want %d", got.Clients, spec.Clients)
	}
	if got.Sess < spec.Sess/2 || got.Sess > spec.Sess*2 {
		t.Errorf("fitted sess = %v, want within 2x of %v", got.Sess, spec.Sess)
	}
}

func TestFlagValidation(t *testing.T) {
	path := writeLog(t, fixture())
	cases := [][]string{
		{},            // no -in
		{"-in", path}, // no mode
		{"-in", path, "-q", "from=events;agg=count", "-fit"}, // two modes
		{"-in", path, "-q", "bogus"},
		{"-in", path, "-report", "bogus"},
		{"-in", "/nope/missing"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

// TestEmptyInputRejected checks a zero-byte log errors rather than
// reporting over nothing.
func TestEmptyInputRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.ndjson")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-in", path, "-report", "latency"}, &out); err == nil {
		t.Fatal("empty input should fail")
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleJSON = `{"Action":"start","Package":"mediacache"}
{"Action":"output","Package":"mediacache","Output":"goos: linux\n"}
{"Action":"output","Package":"mediacache","Output":"BenchmarkEvictionHeavy/greedydual/scan-8 \t   12297\t     33491 ns/op\t   38581 B/op\t       3 allocs/op\n"}
{"Action":"output","Package":"mediacache","Output":"BenchmarkEvictionHeavy/greedydual/indexed-8 \t  209145\t      2137 ns/op\t     110 B/op\t       1 allocs/op\n"}
{"Action":"output","Package":"mediacache","Output":"BenchmarkLRUSKSelection/scan-8 \t    5000\t    240000 ns/op\t   10000 B/op\t      12 allocs/op\n"}
{"Action":"output","Package":"mediacache","Output":"BenchmarkLRUSKSelection/tree-8 \t  500000\t      2400 ns/op\t     100 B/op\t       1 allocs/op\n"}
{"Action":"output","Package":"mediacache","Test":"BenchmarkFigure3","Output":"BenchmarkFigure3\n"}
{"Action":"output","Package":"mediacache","Test":"BenchmarkFigure3","Output":"       8\t 147853228 ns/op\t        48.23 GreedyDual_%\t14411174 B/op\t  179897 allocs/op\n"}
{"Action":"output","Package":"mediacache","Output":"PASS\n"}
`

func TestParseBench(t *testing.T) {
	runs, err := parseBench(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 5 {
		t.Fatalf("parsed %d results, want 5: %v", len(runs), runs)
	}
	r, ok := runs["EvictionHeavy/greedydual/scan"]
	if !ok {
		t.Fatalf("scan result missing: %v", runs)
	}
	if r["ns/op"] != 33491 || r["B/op"] != 38581 || r["allocs/op"] != 3 {
		t.Fatalf("scan metrics = %v", r)
	}
	// test2json split format: name only in the Test field.
	split, ok := runs["Figure3"]
	if !ok {
		t.Fatalf("split-format result missing: %v", runs)
	}
	if split["ns/op"] != 147853228 || split["GreedyDual_%"] != 48.23 {
		t.Fatalf("split metrics = %v", split)
	}
}

func TestParsePlainTextOutput(t *testing.T) {
	plain := "BenchmarkFoo/scan-4   100   2000 ns/op   64 B/op   2 allocs/op\n" +
		"BenchmarkFoo/indexed-4   1000   200 ns/op   0 B/op   0 allocs/op\n"
	runs, err := parseBench(strings.NewReader(plain))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("parsed %d results, want 2", len(runs))
	}
}

func TestWritePairs(t *testing.T) {
	runs, err := parseBench(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := writePairs(&sb, runs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "EvictionHeavy/greedydual") {
		t.Fatalf("pair table missing greedydual:\n%s", out)
	}
	if !strings.Contains(out, "15.67x") {
		t.Fatalf("expected 15.67x speedup in:\n%s", out)
	}
	if !strings.Contains(out, "LRUSKSelection") || !strings.Contains(out, "100.00x") {
		t.Fatalf("expected LRUSKSelection 100.00x in:\n%s", out)
	}
}

// TestWritePairsMultipleAgainstOneBaseline checks one /global baseline can
// anchor several /sharded-N rows, each labelled with its own variant.
func TestWritePairsMultipleAgainstOneBaseline(t *testing.T) {
	sample := "BenchmarkServerThroughput/global-4   1000   400000 ns/op   512 B/op   8 allocs/op\n" +
		"BenchmarkServerThroughput/shards=2-4   10000   40000 ns/op   520 B/op   9 allocs/op\n" +
		// No -GOMAXPROCS suffix, as emitted on a single-CPU host: the
		// variant spelling must survive the proc-suffix strip either way.
		"BenchmarkServerThroughput/shards=4   16000   25000 ns/op   520 B/op   9 allocs/op\n" +
		"BenchmarkServerThroughput/shards=8-4   20000   20000 ns/op   520 B/op   9 allocs/op\n"
	runs, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := writePairs(&sb, runs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"ServerThroughput/shards=2", "10.00x",
		"ServerThroughput/shards=4", "16.00x",
		"ServerThroughput/shards=8", "20.00x",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("pair table missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCompare(t *testing.T) {
	old, err := parseBench(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	improved := strings.ReplaceAll(sampleJSON, "33491 ns/op", "16745 ns/op")
	newRuns, err := parseBench(strings.NewReader(improved))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := writeCompare(&sb, old, newRuns); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "-50.0%") {
		t.Fatalf("expected -50.0%% delta in:\n%s", out)
	}
}

func TestNoPairsErrors(t *testing.T) {
	runs := map[string]result{"Solo": {"ns/op": 1}}
	if err := writePairs(&strings.Builder{}, runs); err == nil {
		t.Fatal("want error when no pairs exist")
	}
	if err := writeCompare(&strings.Builder{}, runs, map[string]result{"Other": {"ns/op": 1}}); err == nil {
		t.Fatal("want error when no common benchmarks exist")
	}
}

const sampleLoadJSON = `{
  "tool": "loadgen", "mode": "pool", "workload": "zipf=0.271",
  "points": [
    {"rateHz": 2000, "offered": 4000, "completed": 4000, "shed": 0, "degraded": 12,
     "achievedHz": 1998, "p50Micros": 150, "p99Micros": 900, "p999Micros": 2100},
    {"rateHz": 50000, "offered": 100000, "completed": 91000, "shed": 9000, "degraded": 300,
     "achievedHz": 45500, "p50Micros": 800, "p99Micros": 9500, "p999Micros": 31000}
  ]
}`

func TestLoadArchiveTable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_load.json")
	if err := os.WriteFile(path, []byte(sampleLoadJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"loadgen pool zipf=0.271", "50000", "45500", "9500"} {
		if !strings.Contains(out, want) {
			t.Errorf("load table missing %q:\n%s", want, out)
		}
	}
}

func TestLoadArchiveCompare(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldPath, []byte(sampleLoadJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	improved := strings.ReplaceAll(sampleLoadJSON, `"achievedHz": 45500`, `"achievedHz": 50000`)
	if err := os.WriteFile(newPath, []byte(improved), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{oldPath, newPath}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "+9.9%") {
		t.Fatalf("expected +9.9%% throughput delta in:\n%s", sb.String())
	}
	// A loadgen archive cannot compare against a benchmark stream.
	benchPath := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(benchPath, []byte(sampleJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{oldPath, benchPath}, &sb); err == nil {
		t.Fatal("mixed archive kinds should fail")
	}
}

// Command benchcmp compares archived benchmark runs.
//
// Usage:
//
//	benchcmp BENCH_OLD.json BENCH_NEW.json
//	benchcmp BENCH.json
//
// Inputs are the test2json archives `make bench` writes (BENCH_<date>.json).
// With two files, same-named benchmarks are compared old→new with their
// ns/op, B/op and allocs/op deltas. With one file, the tool pairs each
// baseline benchmark with its optimized sibling — /scan against /indexed
// (or /tree), /naive against /inflation, and the single-global-lock
// /global server layout against each /shards=N pool — and reports the
// speedup of the optimized implementation from a single `make bench` run.
// Rows are labelled with the optimized variant, since one baseline can
// anchor several comparisons.
//
// Archives written by `loadgen -json` (BENCH_<date>-load.json) are also
// accepted: one file renders its latency-vs-offered-load table; two files
// compare achieved throughput and tail latency per matching rate point.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// result holds one benchmark's reported metrics by unit (ns/op, B/op, ...).
type result map[string]float64

// event is the subset of a test2json record benchcmp needs.
type event struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// parseBench extracts benchmark results from a test2json stream. Lines that
// are not benchmark result lines are ignored, so plain `go test -bench`
// text output works too.
func parseBench(r io.Reader) (map[string]result, error) {
	out := make(map[string]result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		var test string
		if strings.HasPrefix(line, "{") {
			var ev event
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				continue
			}
			if ev.Action != "output" {
				continue
			}
			line = strings.TrimSuffix(ev.Output, "\n")
			test = ev.Test
		}
		name, res, ok := parseResultLine(line)
		if !ok && test != "" {
			// test2json often splits a result across events: the name
			// arrives alone, then the metrics line with only the Test field
			// naming the benchmark.
			name, res, ok = parseResultLine(test + " " + strings.TrimSpace(line))
		}
		if !ok {
			continue
		}
		out[name] = res
	}
	return out, sc.Err()
}

// parseResultLine parses one `BenchmarkName-P  N  V unit  V unit ...` line.
func parseResultLine(line string) (string, result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the trailing -GOMAXPROCS marker.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if _, err := strconv.ParseUint(fields[1], 10, 64); err != nil {
		return "", nil, false // second field must be the iteration count
	}
	res := make(result)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		res[fields[i+1]] = v
	}
	if _, ok := res["ns/op"]; !ok {
		return "", nil, false
	}
	return name, res, true
}

// pairSuffixes maps baseline benchmark suffixes to their optimized
// siblings inside one run. A baseline suffix may appear several times
// (e.g. /global against every shard count).
var pairSuffixes = []struct{ base, indexed string }{
	{"/scan", "/indexed"},
	{"/scan", "/tree"},
	{"/naive", "/inflation"},
	{"/global", "/shards=1"},
	{"/global", "/shards=2"},
	{"/global", "/shards=4"},
	{"/global", "/shards=8"},
	{"/global", "/segments=2"},
	{"/global", "/segments=4"},
	{"/global", "/segments=8"},
}

// writePairs renders the single-run speedup table.
func writePairs(w io.Writer, runs map[string]result) error {
	names := make([]string, 0, len(runs))
	for name := range runs {
		names = append(names, name)
	}
	sort.Strings(names)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tbaseline ns/op\tindexed ns/op\tspeedup\tB/op\tallocs/op")
	found := false
	for _, name := range names {
		for _, sfx := range pairSuffixes {
			if !strings.HasSuffix(name, sfx.base) {
				continue
			}
			other := strings.TrimSuffix(name, sfx.base) + sfx.indexed
			idx, ok := runs[other]
			if !ok {
				continue
			}
			base := runs[name]
			found = true
			// Label with the optimized variant: one baseline (e.g.
			// /global) can anchor several rows.
			fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.2fx\t%s\t%s\n",
				other,
				base["ns/op"], idx["ns/op"], base["ns/op"]/idx["ns/op"],
				deltaInt(base["B/op"], idx["B/op"]),
				deltaInt(base["allocs/op"], idx["allocs/op"]))
		}
	}
	if !found {
		return fmt.Errorf("no baseline/indexed benchmark pairs found")
	}
	return tw.Flush()
}

// writeCompare renders the two-run old→new table.
func writeCompare(w io.Writer, old, new map[string]result) error {
	names := make([]string, 0, len(old))
	for name := range old {
		if _, ok := new[name]; ok {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("no common benchmarks between the two runs")
	}
	sort.Strings(names)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\told ns/op\tnew ns/op\tdelta\tB/op\tallocs/op")
	for _, name := range names {
		o, n := old[name], new[name]
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%\t%s\t%s\n",
			name, o["ns/op"], n["ns/op"], 100*(n["ns/op"]-o["ns/op"])/o["ns/op"],
			deltaInt(o["B/op"], n["B/op"]),
			deltaInt(o["allocs/op"], n["allocs/op"]))
	}
	return tw.Flush()
}

// deltaInt renders an integer metric transition like "38581→110".
func deltaInt(from, to float64) string {
	return fmt.Sprintf("%.0f→%.0f", from, to)
}

// loadPoint is one rate point of a `loadgen -json` archive (the subset
// benchcmp renders; the full schema lives in cmd/loadgen).
type loadPoint struct {
	RateHz     float64 `json:"rateHz"`
	Offered    int     `json:"offered"`
	Completed  int     `json:"completed"`
	Shed       int     `json:"shed"`
	Degraded   int     `json:"degraded"`
	AchievedHz float64 `json:"achievedHz"`
	P50Micros  float64 `json:"p50Micros"`
	P99Micros  float64 `json:"p99Micros"`
	P999Micros float64 `json:"p999Micros"`
}

// loadArchive is the `loadgen -json` document; Tool == "loadgen"
// distinguishes it from test2json streams.
type loadArchive struct {
	Tool     string      `json:"tool"`
	Mode     string      `json:"mode"`
	Workload string      `json:"workload"`
	Points   []loadPoint `json:"points"`
}

// parseLoadArchive tries to read path as a loadgen archive; ok is false
// when the file is something else (e.g. a test2json stream).
func parseLoadArchive(path string) (loadArchive, bool) {
	b, err := os.ReadFile(path)
	if err != nil {
		return loadArchive{}, false
	}
	var doc loadArchive
	if json.Unmarshal(b, &doc) != nil || doc.Tool != "loadgen" {
		return loadArchive{}, false
	}
	return doc, true
}

// writeLoadTable renders one loadgen archive's rate table.
func writeLoadTable(w io.Writer, doc loadArchive) error {
	fmt.Fprintf(w, "loadgen %s %s\n", doc.Mode, doc.Workload)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "rate/s\toffered\tachieved/s\tp50(µs)\tp99(µs)\tp999(µs)\tshed\tdegraded")
	for _, p := range doc.Points {
		fmt.Fprintf(tw, "%.0f\t%d\t%.0f\t%.0f\t%.0f\t%.0f\t%d\t%d\n",
			p.RateHz, p.Offered, p.AchievedHz, p.P50Micros, p.P99Micros, p.P999Micros,
			p.Shed, p.Degraded)
	}
	return tw.Flush()
}

// writeLoadCompare compares two loadgen archives point by point, matching
// on offered rate.
func writeLoadCompare(w io.Writer, old, new loadArchive) error {
	byRate := make(map[float64]loadPoint, len(old.Points))
	for _, p := range old.Points {
		byRate[p.RateHz] = p
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "rate/s\told achieved/s\tnew achieved/s\tdelta\told p99(µs)\tnew p99(µs)\tdelta")
	found := false
	for _, n := range new.Points {
		o, ok := byRate[n.RateHz]
		if !ok {
			continue
		}
		found = true
		fmt.Fprintf(tw, "%.0f\t%.0f\t%.0f\t%+.1f%%\t%.0f\t%.0f\t%+.1f%%\n",
			n.RateHz, o.AchievedHz, n.AchievedHz,
			100*(n.AchievedHz-o.AchievedHz)/o.AchievedHz,
			o.P99Micros, n.P99Micros,
			100*(n.P99Micros-o.P99Micros)/o.P99Micros)
	}
	if !found {
		return fmt.Errorf("no common rate points between the two archives")
	}
	return tw.Flush()
}

func loadFile(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	runs, err := parseBench(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return runs, nil
}

func run(args []string, w io.Writer) error {
	switch len(args) {
	case 1:
		if doc, ok := parseLoadArchive(args[0]); ok {
			return writeLoadTable(w, doc)
		}
		runs, err := loadFile(args[0])
		if err != nil {
			return err
		}
		return writePairs(w, runs)
	case 2:
		oldLoad, oldOK := parseLoadArchive(args[0])
		newLoad, newOK := parseLoadArchive(args[1])
		if oldOK != newOK {
			return fmt.Errorf("cannot compare a loadgen archive with a benchmark archive")
		}
		if oldOK {
			return writeLoadCompare(w, oldLoad, newLoad)
		}
		old, err := loadFile(args[0])
		if err != nil {
			return err
		}
		new, err := loadFile(args[1])
		if err != nil {
			return err
		}
		return writeCompare(w, old, new)
	default:
		return fmt.Errorf("usage: benchcmp BENCH.json [BENCH_NEW.json]")
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
}

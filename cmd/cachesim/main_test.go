package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

func TestRunSinglePolicy(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-policy", "dynsimple:2", "-ratio", "0.125", "-requests", "2000"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DYNSimple(K=2)", "cache hit rate", "byte hit rate", "resident clips"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunEquiRepo(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-repo", "equi", "-policy", "lruk:2", "-requests", "1000"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "equi (576 clips") {
		t.Errorf("output missing equi repo header:\n%s", out.String())
	}
}

func TestRunWindowedOutput(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-policy", "lru", "-requests", "1000", "-window", "500"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "window-hit-rate") {
		t.Errorf("output missing window table:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "500") || !strings.Contains(out.String(), "1000") {
		t.Errorf("window rows missing:\n%s", out.String())
	}
}

func TestRunComparison(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-policy", "dynsimple:2,greedydual,random", "-requests", "1500"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DYNSimple(K=2)", "GreedyDual", "Random", "theoretical"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("comparison missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunTraceReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	gen := workload.MustNewGenerator(zipf.MustNew(576, zipf.DefaultMean), 9)
	trace := workload.Record("clitest", gen, 500)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out strings.Builder
	if err := run([]string{"-policy", "igd:2", "-trace", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "clitest") {
		t.Errorf("trace name missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "requests          500") {
		t.Errorf("request count missing:\n%s", out.String())
	}
}

func TestRunWorkloadSpec(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-policy", "lruk:2", "-workload", "zipf=0.5,0x800,100x400"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "zipf=0.5,0x800,100x400") {
		t.Errorf("workload spec missing from header:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "requests          1200") {
		t.Errorf("spec phases not summed into request count:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-repo", "bogus"},
		{"-policy", "bogus"},
		{"-policy", "lruk:0"},
		{"-trace", "/nonexistent/trace.csv"},
		{"-ratio", "2.0"}, // capacity >= repository
		{"-workload", "zipf=2"},
		{"-workload", "nonsense"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &out); err == nil {
		t.Fatal("unknown flag should fail")
	}
}

func TestTraceClipCountMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "small.csv")
	gen := workload.MustNewGenerator(zipf.MustNew(10, zipf.DefaultMean), 9)
	trace := workload.Record("small", gen, 50)
	f, _ := os.Create(path)
	if err := trace.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var out strings.Builder
	if err := run([]string{"-trace", path}, &out); err == nil {
		t.Fatal("clip-count mismatch should fail")
	}
}

func TestRunCustomRepoFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "repo.csv")
	catalog := "id,kind,sizeBytes,displayBps\n"
	for i := 1; i <= 12; i++ {
		kind := "audio"
		size := 1000 * i
		if i%2 == 1 {
			kind = "video"
			size = 100000 * i
		}
		catalog += fmt.Sprintf("%d,%s,%d,300000\n", i, kind, size)
	}
	if err := os.WriteFile(path, []byte(catalog), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{"-repofile", path, "-policy", "lrusk:2", "-requests", "500"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "12 clips") {
		t.Errorf("custom repo not loaded:\n%s", out.String())
	}
	// Missing file errors.
	if err := run([]string{"-repofile", "/nope.csv"}, &out); err == nil {
		t.Fatal("missing repofile should fail")
	}
}

// Command cachesim runs a single cache simulation: one repository, one or
// more replacement policies, one workload, and prints the resulting
// metrics.
//
// Usage examples:
//
//	cachesim -policy dynsimple:2 -ratio 0.125 -requests 10000
//	cachesim -policy greedydual -repo equi -ratio 0.25
//	cachesim -policy lrusk:2 -ratio 0.1 -shift 200 -window 1000
//	cachesim -policy simple -ratio 0.05 -trace trace.csv
//	cachesim -policy lruk:3 -workload zipf=0.27,0x10000,200x5000
//	cachesim -policy dynsimple:2,igd:2,greedydual -ratio 0.125   (comparison)
package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"flag"

	"mediacache/internal/media"
	"mediacache/internal/sim"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "cachesim: %v\n", err)
		os.Exit(1)
	}
}

// run executes the CLI against args, writing human-readable output to out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cachesim", flag.ContinueOnError)
	policySpec := fs.String("policy", "dynsimple:2",
		"replacement policy, or a comma-separated list for a comparison table ("+strings.Join(sim.PolicyNames, ", ")+")")
	repoKind := fs.String("repo", "paper", "repository: paper (576 variable-size clips) or equi (576 equal clips)")
	repoFile := fs.String("repofile", "", "load a custom repository from a CSV catalog (id,kind,sizeBytes,displayBps); overrides -repo")
	ratio := fs.Float64("ratio", 0.125, "cache size as a fraction of the repository (S_T/S_DB)")
	requests := fs.Int("requests", sim.DefaultRequests, "number of requests to issue")
	seed := fs.Uint64("seed", sim.DefaultSeed, "random seed for the workload and policy tie-breaks")
	mean := fs.Float64("zipf", zipf.DefaultMean, "Zipfian mean (theta) of the request distribution")
	shift := fs.Int("shift", 0, "identity shift g of the distribution (Section 4.4.1)")
	window := fs.Int("window", 0, "print the hit rate every N requests (0 = off)")
	tracePath := fs.String("trace", "", "replay a CSV trace instead of generating requests")
	workloadSpec := fs.String("workload", "",
		`compact workload spec, e.g. "zipf=0.27,0x10000,200x5000" (overrides -zipf/-shift/-requests)`)
	fitSpec := fs.String("fit", "",
		`replay a fitted session spec from traceql -fit, e.g. "fit=clips=576,theta=0.27,clients=8,sess=10,think=2000,gap=60000"; -requests bounds the replay`)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sched := workload.Schedule{{Shift: *shift, Requests: *requests}}
	if *workloadSpec != "" {
		ws, err := workload.ParseSpec(*workloadSpec)
		if err != nil {
			return err
		}
		*mean = ws.Theta
		if len(ws.Schedule) > 0 {
			sched = ws.Schedule
		}
	}
	var fit *workload.FitSpec
	if *fitSpec != "" {
		if *tracePath != "" {
			return fmt.Errorf("-fit and -trace are mutually exclusive")
		}
		parsed, err := workload.ParseFit(*fitSpec)
		if err != nil {
			return err
		}
		fit = &parsed
	}

	var repo *media.Repository
	if *repoFile != "" {
		f, err := os.Open(*repoFile)
		if err != nil {
			return err
		}
		repo, err = media.ReadRepositoryCSV(f)
		f.Close()
		if err != nil {
			return err
		}
		*repoKind = *repoFile
	} else {
		switch *repoKind {
		case "paper":
			repo = media.PaperRepository()
		case "equi":
			repo = media.PaperEquiRepository()
		default:
			return fmt.Errorf("unknown repository kind %q (want paper or equi)", *repoKind)
		}
	}

	dist, err := zipf.New(repo.N(), *mean)
	if err != nil {
		return err
	}
	capacity := repo.CacheSizeForRatio(*ratio)
	specs := strings.Split(*policySpec, ",")

	var trace *workload.Trace
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		trace, err = workload.ReadCSV(f)
		if err != nil {
			return err
		}
		if err := trace.Validate(); err != nil {
			return err
		}
		if trace.NumClips != repo.N() {
			return fmt.Errorf("trace %q targets %d clips; repository has %d",
				trace.Name, trace.NumClips, repo.N())
		}
	}

	fmt.Fprintf(out, "repository  %s (%d clips, %v)\n", *repoKind, repo.N(), repo.TotalSize())
	fmt.Fprintf(out, "cache       %v (S_T/S_DB = %.4f)\n", capacity, *ratio)
	switch {
	case trace != nil:
		fmt.Fprintf(out, "trace       %s (%d requests)\n", trace.Name, len(trace.Requests))
	case fit != nil:
		fmt.Fprintf(out, "fit         %s seed=%d, %d requests\n", fit, *seed, *requests)
	default:
		fmt.Fprintf(out, "workload    %s seed=%d, %d requests\n",
			workload.Spec{Theta: *mean, Schedule: sched}, *seed, sched.TotalRequests())
	}
	fmt.Fprintln(out)

	if len(specs) > 1 {
		return runComparison(out, specs, repo, dist, capacity, trace, fit, *seed, sched)
	}
	return runSingle(out, specs[0], repo, dist, capacity, trace, fit, *seed, sched, *window)
}

// newSource builds the unified event stream of a run — a fresh replay or
// session source per policy, so comparison rows see identical workloads.
// It returns nil when the run should draw from the scheduled generator
// instead (the windowed/theoretical path that needs per-phase PMFs).
func newSource(repo *media.Repository, trace *workload.Trace, fit *workload.FitSpec, seed uint64) (workload.Source, error) {
	switch {
	case trace != nil:
		return trace.Source(), nil
	case fit != nil:
		return workload.NewSessionSource(*fit, repo, seed)
	default:
		return nil, nil
	}
}

// runSingle runs one policy and prints the full metric panel.
func runSingle(out io.Writer, spec string, repo *media.Repository, dist *zipf.Distribution,
	capacity media.Bytes, trace *workload.Trace, fit *workload.FitSpec, seed uint64,
	sched workload.Schedule, window int) error {
	gen, err := workload.NewGenerator(dist, seed)
	if err != nil {
		return err
	}
	cache, err := sim.NewCache(spec, repo, capacity, gen.PMF(), seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "policy      %s\n\n", cache.Policy().Name())

	src, err := newSource(repo, trace, fit, seed)
	if err != nil {
		return err
	}
	var res *sim.Result
	if src != nil {
		// A recorded trace drains in full; an infinite session source is
		// bounded by the request budget.
		cfg := sim.SourceConfig{WindowSize: window}
		if fit != nil {
			cfg.Limit = sched.TotalRequests()
		}
		res, err = sim.RunSource(cache.Policy().Name(), cache, src, cfg)
	} else {
		cfg := sim.RunConfig{WindowSize: window}
		res, err = sim.Run(cache.Policy().Name(), cache, gen, sched, cfg)
	}
	if err != nil {
		return err
	}

	if window > 0 {
		fmt.Fprintln(out, "request   window-hit-rate   theoretical")
		for _, w := range res.Windows {
			fmt.Fprintf(out, "%-9d %-17.1f %.1f\n", w.EndRequest, w.HitRate*100, w.Theoretical*100)
		}
		fmt.Fprintln(out)
	}
	s := res.Stats
	fmt.Fprintf(out, "requests          %d\n", s.Requests)
	fmt.Fprintf(out, "cache hit rate    %.2f%%\n", s.HitRate()*100)
	fmt.Fprintf(out, "byte hit rate     %.2f%%\n", s.ByteHitRate()*100)
	fmt.Fprintf(out, "theoretical rate  %.2f%%\n", res.Theoretical*100)
	fmt.Fprintf(out, "evictions         %d (%v)\n", s.Evictions, s.BytesEvicted)
	fmt.Fprintf(out, "bytes fetched     %v (network utilization)\n", s.BytesFetched)
	fmt.Fprintf(out, "bypassed misses   %d\n", s.Bypassed)
	fmt.Fprintf(out, "resident clips    %d (%v used of %v)\n",
		cache.NumResident(), cache.UsedBytes(), cache.Capacity())
	return nil
}

// runComparison runs every policy against the identical workload and prints
// a side-by-side table.
func runComparison(out io.Writer, specs []string, repo *media.Repository, dist *zipf.Distribution,
	capacity media.Bytes, trace *workload.Trace, fit *workload.FitSpec, seed uint64, sched workload.Schedule) error {
	fmt.Fprintf(out, "%-26s %10s %10s %12s %10s\n", "policy", "hit", "byte-hit", "theoretical", "evictions")
	for _, spec := range specs {
		spec = strings.TrimSpace(spec)
		gen, err := workload.NewGenerator(dist, seed)
		if err != nil {
			return err
		}
		cache, err := sim.NewCache(spec, repo, capacity, gen.PMF(), seed)
		if err != nil {
			return err
		}
		src, err := newSource(repo, trace, fit, seed)
		if err != nil {
			return err
		}
		var res *sim.Result
		if src != nil {
			cfg := sim.SourceConfig{}
			if fit != nil {
				cfg.Limit = sched.TotalRequests()
			}
			res, err = sim.RunSource(cache.Policy().Name(), cache, src, cfg)
		} else {
			res, err = sim.Run(cache.Policy().Name(), cache, gen, sched, sim.RunConfig{})
		}
		if err != nil {
			return err
		}
		s := res.Stats
		fmt.Fprintf(out, "%-26s %9.2f%% %9.2f%% %11.2f%% %10d\n",
			cache.Policy().Name(), s.HitRate()*100, s.ByteHitRate()*100,
			res.Theoretical*100, s.Evictions)
	}
	return nil
}

package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/netsim"
	"mediacache/internal/policy/registry"
	"mediacache/internal/sim"
)

// apiVersion is the current API version prefix. Unversioned paths are
// deprecated aliases kept for pre-v1 clients; they serve the same handlers
// with a Deprecation header pointing at the successor route.
const apiVersion = "/v1"

// server wires a device cache into an http.Handler. The core engine is
// single-threaded by design (it models one device); the server serializes
// requests with a mutex, which is also the honest model — a device displays
// one clip at a time.
type server struct {
	mu        sync.Mutex
	cache     *core.Cache
	alloc     media.BitsPerSecond
	admission netsim.Seconds
	mux       *http.ServeMux
}

// newServer builds the cache per the CLI configuration and mounts the API.
func newServer(policySpec string, ratio float64, alloc media.BitsPerSecond, admission float64, seed uint64) (*server, error) {
	if alloc <= 0 {
		return nil, fmt.Errorf("link bandwidth must be positive, got %v", alloc)
	}
	repo := media.PaperRepository()
	pmf, err := pmfFor(repo)
	if err != nil {
		return nil, err
	}
	cache, err := sim.NewCache(policySpec, repo, repo.CacheSizeForRatio(ratio), pmf, seed)
	if err != nil {
		return nil, err
	}
	s := &server{
		cache:     cache,
		alloc:     alloc,
		admission: netsim.Seconds(admission),
		mux:       http.NewServeMux(),
	}
	// Versioned API. Method+wildcard patterns give automatic 405s for
	// wrong methods on a known path.
	routes := []struct {
		pattern string
		handler http.HandlerFunc
	}{
		{"GET /clips/{id}", s.handleClip},
		{"GET /stats", s.handleStats},
		{"GET /resident", s.handleResident},
		{"POST /reset", s.handleReset},
		{"GET /snapshot", s.handleSnapshot},
		{"POST /restore", s.handleRestore},
		{"GET /policies", s.handlePolicies},
	}
	for _, rt := range routes {
		method, path, _ := splitPattern(rt.pattern)
		s.mux.Handle(method+" "+apiVersion+path, rt.handler)
		// Deprecated unversioned alias for pre-v1 clients.
		s.mux.Handle(rt.pattern, deprecated(apiVersion+path, rt.handler))
	}
	return s, nil
}

// splitPattern separates a "METHOD /path" route pattern.
func splitPattern(pattern string) (method, path string, ok bool) {
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == ' ' {
			return pattern[:i], pattern[i+1:], true
		}
	}
	return "", pattern, false
}

// deprecated wraps a legacy-alias handler, marking responses with a
// Deprecation header (RFC 9745) and a successor-version link so clients
// can discover the /v1 route.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "@1767225600") // 2026-01-01T00:00:00Z
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

// ServeHTTP implements http.Handler.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// errorResponse is the uniform JSON error envelope of the v1 API.
type errorResponse struct {
	Error string `json:"error"`
}

// writeError reports an error as the uniform JSON envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: fmt.Sprintf(format, args...)})
}

// clipResponse is the JSON body of GET /v1/clips/{id}.
type clipResponse struct {
	Clip           media.ClipID `json:"clip"`
	Kind           string       `json:"kind"`
	SizeBytes      int64        `json:"sizeBytes"`
	Outcome        string       `json:"outcome"`
	Hit            bool         `json:"hit"`
	LatencySeconds float64      `json:"latencySeconds"`
}

// handleClip services GET /v1/clips/{id}.
func (s *server) handleClip(w http.ResponseWriter, r *http.Request) {
	raw := r.PathValue("id")
	id, err := strconv.Atoi(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad clip id %q", raw)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	clip, ok := s.cache.Repository().Lookup(media.ClipID(id))
	if !ok {
		writeError(w, http.StatusNotFound, "clip %d not in repository", id)
		return
	}
	out, err := s.cache.Request(clip.ID)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp := clipResponse{
		Clip:      clip.ID,
		Kind:      clip.Kind.String(),
		SizeBytes: int64(clip.Size),
		Outcome:   out.String(),
		Hit:       out.IsHit(),
	}
	if !out.IsHit() {
		lat, err := netsim.StartupLatency(clip, s.alloc, s.admission)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		resp.LatencySeconds = float64(lat)
	}
	writeJSON(w, resp)
}

// statsResponse is the JSON body of GET /v1/stats.
type statsResponse struct {
	Policy          string  `json:"policy"`
	Requests        uint64  `json:"requests"`
	Hits            uint64  `json:"hits"`
	HitRate         float64 `json:"hitRate"`
	ByteHitRate     float64 `json:"byteHitRate"`
	Evictions       uint64  `json:"evictions"`
	BytesFetched    int64   `json:"bytesFetched"`
	ResidentClips   int     `json:"residentClips"`
	UsedBytes       int64   `json:"usedBytes"`
	CapacityBytes   int64   `json:"capacityBytes"`
	BypassedMisses  uint64  `json:"bypassedMisses"`
	VictimCalls     uint64  `json:"victimCalls"`
	TheoreticalNote string  `json:"note,omitempty"`
}

// handleStats services GET /v1/stats.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.cache.Stats()
	writeJSON(w, statsResponse{
		Policy:         s.cache.Policy().Name(),
		Requests:       st.Requests,
		Hits:           st.Hits,
		HitRate:        st.HitRate(),
		ByteHitRate:    st.ByteHitRate(),
		Evictions:      st.Evictions,
		BytesFetched:   int64(st.BytesFetched),
		ResidentClips:  s.cache.NumResident(),
		UsedBytes:      int64(s.cache.UsedBytes()),
		CapacityBytes:  int64(s.cache.Capacity()),
		BypassedMisses: st.Bypassed,
		VictimCalls:    st.VictimCalls,
	})
}

// residentResponse is the JSON body of GET /v1/resident.
type residentResponse struct {
	Clips     []media.ClipID `json:"clips"`
	UsedBytes int64          `json:"usedBytes"`
	FreeBytes int64          `json:"freeBytes"`
}

// handleResident services GET /v1/resident.
func (s *server) handleResident(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, residentResponse{
		Clips:     s.cache.ResidentIDs(),
		UsedBytes: int64(s.cache.UsedBytes()),
		FreeBytes: int64(s.cache.FreeBytes()),
	})
}

// handleReset services POST /v1/reset.
func (s *server) handleReset(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache.Reset()
	w.WriteHeader(http.StatusNoContent)
}

// handleSnapshot services GET /v1/snapshot: the cache's persistent state as
// a gob-encoded core.Snapshot, suitable for POSTing back to /v1/restore
// after a restart (the FMC device's disk-backed cache surviving a power
// cycle).
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	snap := s.cache.Snapshot()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := snap.WriteSnapshot(w); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// handleRestore services POST /v1/restore with a gob snapshot body.
func (s *server) handleRestore(w http.ResponseWriter, r *http.Request) {
	snap, err := core.ReadSnapshot(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.cache.Restore(snap); err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// policiesResponse is the JSON body of GET /v1/policies.
type policiesResponse struct {
	Current  string   `json:"current"`
	Policies []string `json:"policies"`
}

// handlePolicies services GET /v1/policies: the policy specs the registry
// can build (including any registered out-of-tree) and the one this server
// is running.
func (s *server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	current := s.cache.Policy().Name()
	s.mu.Unlock()
	writeJSON(w, policiesResponse{
		Current:  current,
		Policies: registry.Usages(),
	})
}

// writeJSON encodes v with an application/json content type.
func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

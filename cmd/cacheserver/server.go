package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/netsim"
	"mediacache/internal/sim"
)

// server wires a device cache into an http.Handler. The core engine is
// single-threaded by design (it models one device); the server serializes
// requests with a mutex, which is also the honest model — a device displays
// one clip at a time.
type server struct {
	mu        sync.Mutex
	cache     *core.Cache
	alloc     media.BitsPerSecond
	admission netsim.Seconds
	mux       *http.ServeMux
}

// newServer builds the cache per the CLI configuration and mounts the API.
func newServer(policySpec string, ratio float64, alloc media.BitsPerSecond, admission float64, seed uint64) (*server, error) {
	if alloc <= 0 {
		return nil, fmt.Errorf("link bandwidth must be positive, got %v", alloc)
	}
	repo := media.PaperRepository()
	pmf, err := pmfFor(repo)
	if err != nil {
		return nil, err
	}
	cache, err := sim.NewCache(policySpec, repo, repo.CacheSizeForRatio(ratio), pmf, seed)
	if err != nil {
		return nil, err
	}
	s := &server{
		cache:     cache,
		alloc:     alloc,
		admission: netsim.Seconds(admission),
		mux:       http.NewServeMux(),
	}
	s.mux.HandleFunc("/clips/", s.handleClip)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/resident", s.handleResident)
	s.mux.HandleFunc("/reset", s.handleReset)
	s.mux.HandleFunc("/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/restore", s.handleRestore)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// clipResponse is the JSON body of GET /clips/{id}.
type clipResponse struct {
	Clip           media.ClipID `json:"clip"`
	Kind           string       `json:"kind"`
	SizeBytes      int64        `json:"sizeBytes"`
	Outcome        string       `json:"outcome"`
	Hit            bool         `json:"hit"`
	LatencySeconds float64      `json:"latencySeconds"`
}

// handleClip services GET /clips/{id}.
func (s *server) handleClip(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/clips/")
	id, err := strconv.Atoi(raw)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad clip id %q", raw), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	clip, ok := s.cache.Repository().Lookup(media.ClipID(id))
	if !ok {
		http.Error(w, fmt.Sprintf("clip %d not in repository", id), http.StatusNotFound)
		return
	}
	out, err := s.cache.Request(clip.ID)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := clipResponse{
		Clip:      clip.ID,
		Kind:      clip.Kind.String(),
		SizeBytes: int64(clip.Size),
		Outcome:   out.String(),
		Hit:       out.IsHit(),
	}
	if !out.IsHit() {
		lat, err := netsim.StartupLatency(clip, s.alloc, s.admission)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		resp.LatencySeconds = float64(lat)
	}
	writeJSON(w, resp)
}

// statsResponse is the JSON body of GET /stats.
type statsResponse struct {
	Policy          string  `json:"policy"`
	Requests        uint64  `json:"requests"`
	Hits            uint64  `json:"hits"`
	HitRate         float64 `json:"hitRate"`
	ByteHitRate     float64 `json:"byteHitRate"`
	Evictions       uint64  `json:"evictions"`
	BytesFetched    int64   `json:"bytesFetched"`
	ResidentClips   int     `json:"residentClips"`
	UsedBytes       int64   `json:"usedBytes"`
	CapacityBytes   int64   `json:"capacityBytes"`
	BypassedMisses  uint64  `json:"bypassedMisses"`
	TheoreticalNote string  `json:"note,omitempty"`
}

// handleStats services GET /stats.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.cache.Stats()
	writeJSON(w, statsResponse{
		Policy:         s.cache.Policy().Name(),
		Requests:       st.Requests,
		Hits:           st.Hits,
		HitRate:        st.HitRate(),
		ByteHitRate:    st.ByteHitRate(),
		Evictions:      st.Evictions,
		BytesFetched:   int64(st.BytesFetched),
		ResidentClips:  s.cache.NumResident(),
		UsedBytes:      int64(s.cache.UsedBytes()),
		CapacityBytes:  int64(s.cache.Capacity()),
		BypassedMisses: st.Bypassed,
	})
}

// residentResponse is the JSON body of GET /resident.
type residentResponse struct {
	Clips     []media.ClipID `json:"clips"`
	UsedBytes int64          `json:"usedBytes"`
	FreeBytes int64          `json:"freeBytes"`
}

// handleResident services GET /resident.
func (s *server) handleResident(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	writeJSON(w, residentResponse{
		Clips:     s.cache.ResidentIDs(),
		UsedBytes: int64(s.cache.UsedBytes()),
		FreeBytes: int64(s.cache.FreeBytes()),
	})
}

// handleReset services POST /reset.
func (s *server) handleReset(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache.Reset()
	w.WriteHeader(http.StatusNoContent)
}

// handleSnapshot services GET /snapshot: the cache's persistent state as a
// gob-encoded core.Snapshot, suitable for POSTing back to /restore after a
// restart (the FMC device's disk-backed cache surviving a power cycle).
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	snap := s.cache.Snapshot()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := snap.WriteSnapshot(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleRestore services POST /restore with a gob snapshot body.
func (s *server) handleRestore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	snap, err := core.ReadSnapshot(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.cache.Restore(snap); err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// writeJSON encodes v with an application/json content type.
func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

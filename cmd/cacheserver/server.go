package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"mediacache/internal/api"
	"mediacache/internal/cluster"
	"mediacache/internal/core"
	"mediacache/internal/fault"
	"mediacache/internal/media"
	"mediacache/internal/metrics"
	"mediacache/internal/netsim"
	"mediacache/internal/obs"
	"mediacache/internal/policy/registry"
	"mediacache/internal/shard"
	"mediacache/internal/sim"
	"mediacache/internal/vtime"
)

// config bundles everything newServer needs. Zero values are invalid for
// policy/ratio/alloc; logger nil means "discard"; shards <= 0 means one
// shard (the single-engine layout every pre-sharding deployment ran).
type config struct {
	policy    string
	ratio     float64
	alloc     media.BitsPerSecond
	admission float64
	seed      uint64
	shards    int // cache shard count; <= 0 means 1
	// segmentSize > 0 switches every shard to segment-granular residency
	// (clips divide into fixed-size segments, Range requests are serviced
	// per segment); prefixSegments pins the first N segments of every clip.
	segmentSize    media.Bytes
	prefixSegments int
	// ttl > 0 gives every cached clip a time-to-live of that many virtual
	// ticks: expired clips are invalidated lazily on access and by an
	// amortized sweep, and DELETE /v1/clips/{id} drops a clip immediately.
	// 0 disables expiry (the pre-churn behaviour).
	ttl    vtime.Duration
	logger *slog.Logger // access log + event traces; nil discards
	trace  bool         // log every cache event at debug level
	pprof  bool         // mount net/http/pprof under /debug/pprof/
	// reqlog receives the NDJSON request log (-reqlog); nil disables it.
	reqlog io.Writer

	// Failure and degradation layer (degrade.go). The zero values disable
	// all three mechanisms.
	faults      fault.Profile // injected fault schedule on the clip route
	maxInFlight int           // shed requests beyond this bound (0 = unbounded)
	memLimit    uint64        // bypass admission above this heap size (0 = off)

	// Cooperative cluster tier (cluster.go). Zero nodeID = standalone.
	cluster clusterConfig
}

// server wires a device cache into an http.Handler. The cache is a
// hash-partitioned pool of single-threaded engines (internal/shard): each
// shard owns a slice of the clip-ID space, its own policy instance and its
// own lock, so requests for clips on different shards proceed in parallel
// while each engine keeps the paper's one-device semantics. With -shards 1
// the pool degenerates to exactly the single serialized engine earlier
// versions ran. Engine events flow through the core observer hook into the
// metrics registry (and, with -trace, into slog).
type server struct {
	pool       *shard.Pool
	alloc      media.BitsPerSecond
	admission  netsim.Seconds
	policySpec string
	reg        *metrics.Registry
	log        *slog.Logger
	mux        *http.ServeMux
	handler    http.Handler // middleware-wrapped mux
	chaos      *chaos       // nil when fault injection is off
	shed       *shedder
	guard      *memGuard
	cluster    *cluster.Cluster // nil when -node-id is unset (standalone)
	peerAlloc  media.BitsPerSecond
	digestSeq  atomic.Uint64
	reqlog     *reqLogger // nil when -reqlog is unset
}

// newServer builds the cache pool per the CLI configuration and mounts the
// API.
func newServer(cfg config) (*server, error) {
	if cfg.alloc <= 0 {
		return nil, fmt.Errorf("link bandwidth must be positive, got %v", cfg.alloc)
	}
	if cfg.ratio <= 0 || cfg.ratio >= 1 {
		return nil, fmt.Errorf("cache ratio must be in (0, 1), got %v", cfg.ratio)
	}
	repo := media.PaperRepository()
	pmf, err := pmfFor(repo)
	if err != nil {
		return nil, err
	}
	log := cfg.logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if err := cfg.faults.Validate(); err != nil {
		return nil, err
	}
	reg := metrics.NewRegistry()
	guard := newMemGuard(cfg.memLimit, reg)
	// Every shard shares the registry-backed counters (registration is
	// idempotent) but owns its observer instance, whose unexported state is
	// guarded by that shard's lock.
	shardOptions := func(int) []core.Option {
		observer := core.Observer(obs.NewCacheMetrics(reg))
		if cfg.trace {
			observer = core.CombineObservers(observer, obs.NewTracer(log))
		}
		opts := []core.Option{core.WithObserver(observer)}
		if cfg.memLimit > 0 {
			opts = append(opts, core.WithAdmission(guard.admission))
		}
		return opts
	}
	pool, err := shard.New(shard.Config{
		Policy:         cfg.policy,
		Repo:           repo,
		PMF:            pmf,
		Capacity:       repo.CacheSizeForRatio(cfg.ratio),
		Seed:           cfg.seed,
		Shards:         cfg.shards,
		SegmentSize:    cfg.segmentSize,
		PrefixSegments: cfg.prefixSegments,
		TTL:            cfg.ttl,
		ShardOptions:   shardOptions,
	})
	if err != nil {
		return nil, err
	}
	s := &server{
		pool:       pool,
		alloc:      cfg.alloc,
		admission:  netsim.Seconds(cfg.admission),
		policySpec: cfg.policy,
		reg:        reg,
		log:        log,
		mux:        http.NewServeMux(),
		shed:       newShedder(cfg.maxInFlight, reg),
		guard:      guard,
	}
	if cfg.reqlog != nil {
		s.reqlog = newReqLogger(cfg.reqlog, pool.PolicyName())
	}
	if cfg.faults.Enabled() {
		s.chaos = newChaos(cfg.faults, cfg.seed, reg)
	}
	s.registerCacheGauges()
	// Register the sweep-pool gauges and adopt the process-wide pool
	// observer: a server embedding batch sweeps (warmup, offline analysis)
	// reports them through the same /v1/metrics page. Idle servers expose
	// the family at zero.
	sim.SetPoolObserver(obs.NewPoolMetrics(reg))
	// Versioned API. Method+wildcard patterns give automatic 405s (with an
	// Allow header) for wrong methods on a known path; the JSON-error
	// middleware rewrites those, and 404s, into the uniform envelope.
	routes := []struct {
		pattern string
		handler http.HandlerFunc
		legacy  bool // also mount the retired unversioned alias (410 Gone)
	}{
		{"GET /clips/{id}", s.handleClip, true},
		{"HEAD /clips/{id}", s.handleHeadClip, false},
		{"DELETE /clips/{id}", s.handleDeleteClip, false},
		{"POST /batch", s.handleBatch, false},
		{"GET /stats", s.handleStats, true},
		{"GET /resident", s.handleResident, true},
		{"POST /reset", s.handleReset, true},
		{"GET /snapshot", s.handleSnapshot, true},
		{"POST /restore", s.handleRestore, true},
		{"GET /policies", s.handlePolicies, true},
		{"GET /shards", s.handleShards, false},
		{"GET /metrics", s.handleMetrics, false},
		{"GET /healthz", s.handleHealthz, false},
		{"GET /version", s.handleVersion, false},
	}
	for _, rt := range routes {
		method, path, _ := splitPattern(rt.pattern)
		v1 := method + " " + api.Version + path
		handler := rt.handler
		if s.chaos != nil && rt.pattern == "GET /clips/{id}" {
			// The flaky link only affects clip fetches; the control and
			// observability routes stay reliable. Instrumenting outside the
			// chaos wrapper keeps injected latency visible in the route's
			// latency histogram.
			handler = s.chaos.wrap(handler)
		}
		s.mux.Handle(v1, s.instrument(v1, handler))
		if rt.legacy {
			// The pre-v1 alias is retired: answer 410 Gone with a pointer
			// at the versioned successor instead of serving stale wire
			// shapes forever.
			s.mux.Handle(rt.pattern, gone(api.Version+path))
		}
	}
	if cfg.cluster.nodeID != "" {
		if err := s.initCluster(cfg.cluster); err != nil {
			return nil, err
		}
	}
	if cfg.pprof {
		s.mountPprof()
	}
	s.handler = withRequestID(withAccessLog(log, s.withHTTPMetrics(s.shed.wrap(withJSONErrors(s.mux)))))
	return s, nil
}

// splitPattern separates a "METHOD /path" route pattern.
func splitPattern(pattern string) (method, path string, ok bool) {
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == ' ' {
			return pattern[:i], pattern[i+1:], true
		}
	}
	return "", pattern, false
}

// gone answers a retired pre-v1 alias path: 410 Gone in the uniform JSON
// envelope, with a Link header (RFC 8288) naming the successor route so
// stranded clients can self-migrate. The aliases served deprecation
// headers for a full release cycle before retirement.
func gone(successor string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		writeError(w, http.StatusGone, "unversioned path retired; use %s", successor)
	}
}

// ServeHTTP implements http.Handler through the middleware chain:
// request-id → access log → HTTP metrics → load shed → JSON 404/405
// rewrite → mux.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// writeError reports an error as the uniform JSON envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	writeErrorHeaderless(w, status, format, args...)
}

// writeErrorHeaderless is writeError for callers that have already set the
// content type (the 404/405 rewriter, whose header map is shared with the
// wrapped writer).
func writeErrorHeaderless(w http.ResponseWriter, status int, format string, args ...interface{}) {
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(api.Error{Error: fmt.Sprintf(format, args...)})
}

// handleClip services GET /v1/clips/{id}, the partial-content clip API. A
// Range header selects a byte range: valid single ranges are serviced at
// segment granularity (206 + Content-Range; 200 when the range spans a fully
// resident clip), unsatisfiable or multi-range requests answer 416 with
// Content-Range: bytes */size, and malformed or non-bytes ranges are ignored
// per RFC 9110 (full response, 200). A Range combined with If-Range is also
// ignored — the simulator has no validators to compare, and RFC 9110 §13.1.5
// says to ignore If-Range (and serve the full representation) when its
// validator cannot match.
func (s *server) handleClip(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	raw := r.PathValue("id")
	id, err := strconv.Atoi(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad clip id %q", raw)
		return
	}
	clip, ok := s.pool.Repository().Lookup(media.ClipID(id))
	if !ok {
		writeError(w, http.StatusNotFound, "clip %d not in repository", id)
		return
	}
	if hdr := r.Header.Get("Range"); hdr != "" && r.Header.Get("If-Range") == "" {
		rng, rerr := parseRange(hdr, clip.Size)
		if rerr != nil {
			w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", clip.Size))
			writeError(w, http.StatusRequestedRangeNotSatisfiable, "%v: %q", rerr, hdr)
			return
		}
		if rng != nil {
			s.serveClipRange(w, r, clip, *rng, start)
			return
		}
		// Malformed or non-bytes range: fall through to the full response.
	}
	// Clustered nodes consult the clip's ring owners before the local engine
	// books the miss: the engine's accounting is identical either way, but a
	// peer win charges startup latency to the peer link, not the origin.
	peer, peerHit := s.consultPeers(r, clip)
	out, err := s.pool.Request(clip.ID)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp := api.Clip{
		Clip:      clip.ID,
		Kind:      clip.Kind.String(),
		SizeBytes: int64(clip.Size),
		Outcome:   out.String(),
		Hit:       out.IsHit(),
	}
	if !out.IsHit() {
		alloc := s.alloc
		if peerHit {
			resp.Peer = peer
			alloc = s.peerAlloc
		}
		lat, err := netsim.StartupLatency(clip, alloc, s.admission)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		resp.LatencySeconds = float64(lat)
	}
	s.decorateSegmented(&resp, clip)
	s.decorateTTL(&resp, clip.ID)
	s.logClip(r, clip, nil, resp.Outcome, resp.Hit, http.StatusOK, resp.LatencySeconds, resp.Peer, start)
	w.Header().Set("Accept-Ranges", "bytes")
	writeJSON(w, resp)
}

// decorateTTL attaches the clip's expiry tick on TTL-enabled servers. A
// no-op otherwise — and for non-resident clips, whose deadline is zero and
// therefore omitted — so pre-churn responses stay byte-identical.
func (s *server) decorateTTL(resp *api.Clip, id media.ClipID) {
	if s.pool.TTL() > 0 {
		resp.ExpiresAtTick = int64(s.pool.DeadlineOf(id))
	}
}

// handleDeleteClip services DELETE /v1/clips/{id}: drop the clip's cached
// bytes immediately — the catalog invalidation a publisher issues when a
// clip is replaced or withdrawn. Invalidation is not a request and not an
// eviction: it leaves the request counters and the hit/miss identities
// untouched. Idempotent — deleting a non-resident clip answers 204 with
// zero freed bytes; only an id outside the repository is 404. The freed
// byte count is reported in X-Cache-Invalidated-Bytes.
func (s *server) handleDeleteClip(w http.ResponseWriter, r *http.Request) {
	raw := r.PathValue("id")
	id, err := strconv.Atoi(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad clip id %q", raw)
		return
	}
	if _, ok := s.pool.Repository().Lookup(media.ClipID(id)); !ok {
		writeError(w, http.StatusNotFound, "clip %d not in repository", id)
		return
	}
	freed := s.pool.Invalidate(media.ClipID(id))
	w.Header().Set("X-Cache-Invalidated-Bytes", strconv.FormatInt(int64(freed), 10))
	w.WriteHeader(http.StatusNoContent)
}

// handleStats services GET /v1/stats: every shard's counters aggregated
// under one consistent snapshot. The shards field appears only on sharded
// pools, keeping single-shard responses byte-identical to pre-sharding
// servers.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	var (
		st       core.Stats
		resident int
		segments int
		used     media.Bytes
		capacity media.Bytes
	)
	for _, sh := range s.pool.ShardStats() {
		st = st.Add(sh.Stats)
		resident += sh.NumResident
		segments += sh.ResidentSegments
		used += sh.UsedBytes
		capacity += sh.Capacity
	}
	resp := api.Stats{
		Policy:         s.pool.PolicyName(),
		Requests:       st.Requests,
		Hits:           st.Hits,
		HitRate:        st.HitRate(),
		ByteHitRate:    st.ByteHitRate(),
		Evictions:      st.Evictions,
		BytesFetched:   int64(st.BytesFetched),
		BytesFailed:    int64(st.BytesFailed),
		DegradedMisses: st.FetchFailed,
		ResidentClips:  resident,
		UsedBytes:      int64(used),
		CapacityBytes:  int64(capacity),
		BypassedMisses: st.Bypassed,
		VictimCalls:    st.VictimCalls,
	}
	if n := s.pool.NumShards(); n > 1 {
		resp.Shards = n
	}
	// The segment fields appear only on segmented servers, keeping the
	// pre-segment wire shape byte-identical (the compat golden test).
	if segSize := s.pool.SegmentSize(); segSize > 0 {
		resp.SegmentSizeBytes = int64(segSize)
		resp.PrefixSegments = s.pool.PrefixSegments()
		resp.ResidentSegments = segments
		resp.PartialHits = st.PartialHits
		resp.SegmentsFetched = st.SegmentsFetched
		resp.SegmentsEvicted = st.SegmentsEvicted
	}
	// Catalog-dynamics counters: omitempty hides them on TTL-off servers
	// that never invalidated, keeping the pre-churn wire shape
	// byte-identical (TestPreChurnWireCompat in internal/api).
	resp.Invalidated = st.Invalidated
	resp.Expired = st.Expired
	resp.BytesInvalidated = int64(st.BytesInvalidated)
	if ttl := s.pool.TTL(); ttl > 0 {
		resp.TTLTicks = int64(ttl)
	}
	writeJSON(w, resp)
}

// handleShards services GET /v1/shards: the pool's per-shard occupancy and
// hit statistics, in shard-index order, from one consistent snapshot.
func (s *server) handleShards(w http.ResponseWriter, r *http.Request) {
	stats := s.pool.ShardStats()
	resp := api.Shards{Shards: make([]api.Shard, len(stats))}
	for i, sh := range stats {
		resp.Shards[i] = api.Shard{
			Shard:            sh.Index,
			Requests:         sh.Stats.Requests,
			Hits:             sh.Stats.Hits,
			HitRate:          sh.Stats.HitRate(),
			ResidentClips:    sh.NumResident,
			ResidentSegments: sh.ResidentSegments,
			UsedBytes:        int64(sh.UsedBytes),
			CapacityBytes:    int64(sh.Capacity),
		}
	}
	writeJSON(w, resp)
}

// queryInt parses a non-negative integer query parameter, with def for
// absent.
func queryInt(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad %s %q: want a non-negative integer", name, raw)
	}
	return v, nil
}

// handleResident services GET /v1/resident with ?limit=/?offset= pagination.
// The default format lists per-clip detail (id, kind, sizeBytes); ?format=ids
// serves the bare-ID shape pre-pagination clients expect; ?format=extents
// lists each resident clip's cached byte runs — the segment-aware view, where
// partially resident clips show exactly which extents are cached.
func (s *server) handleResident(w http.ResponseWriter, r *http.Request) {
	limit, err := queryInt(r, "limit", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	offset, err := queryInt(r, "offset", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	format := r.URL.Query().Get("format")
	switch format {
	case "", "ids", "detail", "extents":
	default:
		writeError(w, http.StatusBadRequest, "bad format %q: want \"ids\", \"detail\" or \"extents\"", format)
		return
	}

	// One consistent pool snapshot, merged ascending by ID; byte occupancy
	// derives from the same snapshot so used+free always equals capacity.
	// Used bytes count resident bytes, not clip sizes: on a segmented pool
	// a partially resident clip occupies only its cached segments.
	all, used := s.pool.Residency()
	free := s.pool.Capacity() - used
	total := len(all)
	// Page in ascending-ID order. offset past the end is an empty page,
	// not an error, so clients can walk until exhaustion.
	if offset > total {
		offset = total
	}
	page := all[offset:]
	if limit > 0 && limit < len(page) {
		page = page[:limit]
	}

	switch format {
	case "ids":
		ids := make([]media.ClipID, len(page))
		for i, c := range page {
			ids[i] = c.Clip.ID
		}
		writeJSON(w, api.ResidentIDs{Clips: ids, UsedBytes: int64(used), FreeBytes: int64(free)})
	case "extents":
		clips := make([]api.ClipExtents, len(page))
		for i, c := range page {
			exts := make([]api.ResidentExtent, len(c.Extents))
			for j, e := range c.Extents {
				exts[j] = api.ResidentExtent{OffsetBytes: int64(e.Start), LengthBytes: int64(e.Length)}
			}
			clips[i] = api.ClipExtents{
				ID:            c.Clip.ID,
				SizeBytes:     int64(c.Clip.Size),
				BytesResident: int64(c.Bytes),
				Extents:       exts,
			}
		}
		writeJSON(w, api.ResidentExtents{
			Clips:            clips,
			Total:            total,
			Offset:           offset,
			Limit:            limit,
			SegmentSizeBytes: int64(s.pool.SegmentSize()),
			UsedBytes:        int64(used),
			FreeBytes:        int64(free),
		})
	default:
		clips := make([]api.ResidentClip, len(page))
		for i, c := range page {
			clips[i] = api.ResidentClip{ID: c.Clip.ID, Kind: c.Clip.Kind.String(), SizeBytes: int64(c.Clip.Size)}
		}
		writeJSON(w, api.Resident{
			Clips:     clips,
			Total:     total,
			Offset:    offset,
			Limit:     limit,
			UsedBytes: int64(used),
			FreeBytes: int64(free),
		})
	}
}

// handleReset services POST /v1/reset.
func (s *server) handleReset(w http.ResponseWriter, r *http.Request) {
	s.pool.Reset()
	w.WriteHeader(http.StatusNoContent)
}

// handleSnapshot services GET /v1/snapshot: the pool's persistent state as
// a gob-encoded core.Snapshot, suitable for POSTing back to /v1/restore
// after a restart (the FMC device's disk-backed cache surviving a power
// cycle). Snapshots are portable across shard counts: restore re-partitions
// the resident set by the routing hash.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap := s.pool.Snapshot()
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := snap.WriteSnapshot(w); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// handleRestore services POST /v1/restore with a gob snapshot body.
func (s *server) handleRestore(w http.ResponseWriter, r *http.Request) {
	snap, err := core.ReadSnapshot(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.pool.Restore(snap); err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handlePolicies services GET /v1/policies: the policy specs the registry
// can build (including any registered out-of-tree) and the one this server
// is running.
func (s *server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, api.Policies{
		Current:  s.pool.PolicyName(),
		Policies: registry.Usages(),
	})
}

// writeJSON encodes v with an application/json content type.
func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	writeJSONBody(w, v)
}

// writeJSONBody encodes v after headers have been decided.
func writeJSONBody(w http.ResponseWriter, v interface{}) {
	if err := json.NewEncoder(w).Encode(v); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

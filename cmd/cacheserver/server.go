package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"

	"mediacache/internal/core"
	"mediacache/internal/fault"
	"mediacache/internal/media"
	"mediacache/internal/metrics"
	"mediacache/internal/netsim"
	"mediacache/internal/obs"
	"mediacache/internal/policy/registry"
	"mediacache/internal/sim"
)

// apiVersion is the current API version prefix. Unversioned paths are
// deprecated aliases kept for pre-v1 clients; they serve the same handlers
// with a Deprecation header pointing at the successor route. The alias set
// is frozen: observability routes (/v1/metrics, /v1/healthz, /v1/version)
// exist only under /v1.
const apiVersion = "/v1"

// config bundles everything newServer needs. Zero values are invalid for
// policy/ratio/alloc; logger nil means "discard".
type config struct {
	policy    string
	ratio     float64
	alloc     media.BitsPerSecond
	admission float64
	seed      uint64
	logger    *slog.Logger // access log + event traces; nil discards
	trace     bool         // log every cache event at debug level
	pprof     bool         // mount net/http/pprof under /debug/pprof/

	// Failure and degradation layer (degrade.go). The zero values disable
	// all three mechanisms.
	faults      fault.Profile // injected fault schedule on the clip route
	maxInFlight int           // shed requests beyond this bound (0 = unbounded)
	memLimit    uint64        // bypass admission above this heap size (0 = off)
}

// server wires a device cache into an http.Handler. The core engine is
// single-threaded by design (it models one device); the server serializes
// requests with a mutex, which is also the honest model — a device displays
// one clip at a time. Engine events flow through the core observer hook
// into the metrics registry (and, with -trace, into slog), off the locked
// path's critical section only in the sense that observers are atomics.
type server struct {
	mu         sync.Mutex
	cache      *core.Cache
	alloc      media.BitsPerSecond
	admission  netsim.Seconds
	policySpec string
	reg        *metrics.Registry
	log        *slog.Logger
	mux        *http.ServeMux
	handler    http.Handler // middleware-wrapped mux
	chaos      *chaos       // nil when fault injection is off
	shed       *shedder
	guard      *memGuard
}

// newServer builds the cache per the CLI configuration and mounts the API.
func newServer(cfg config) (*server, error) {
	if cfg.alloc <= 0 {
		return nil, fmt.Errorf("link bandwidth must be positive, got %v", cfg.alloc)
	}
	repo := media.PaperRepository()
	pmf, err := pmfFor(repo)
	if err != nil {
		return nil, err
	}
	log := cfg.logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if err := cfg.faults.Validate(); err != nil {
		return nil, err
	}
	reg := metrics.NewRegistry()
	observer := core.Observer(obs.NewCacheMetrics(reg))
	if cfg.trace {
		observer = core.CombineObservers(observer, obs.NewTracer(log))
	}
	guard := newMemGuard(cfg.memLimit, reg)
	engineOpts := []core.Option{core.WithObserver(observer)}
	if cfg.memLimit > 0 {
		engineOpts = append(engineOpts, core.WithAdmission(guard.admission))
	}
	cache, err := sim.NewCache(cfg.policy, repo, repo.CacheSizeForRatio(cfg.ratio),
		pmf, cfg.seed, engineOpts...)
	if err != nil {
		return nil, err
	}
	s := &server{
		cache:      cache,
		alloc:      cfg.alloc,
		admission:  netsim.Seconds(cfg.admission),
		policySpec: cfg.policy,
		reg:        reg,
		log:        log,
		mux:        http.NewServeMux(),
		shed:       newShedder(cfg.maxInFlight, reg),
		guard:      guard,
	}
	if cfg.faults.Enabled() {
		s.chaos = newChaos(cfg.faults, cfg.seed, reg)
	}
	s.registerCacheGauges()
	// Register the sweep-pool gauges and adopt the process-wide pool
	// observer: a server embedding batch sweeps (warmup, offline analysis)
	// reports them through the same /v1/metrics page. Idle servers expose
	// the family at zero.
	sim.SetPoolObserver(obs.NewPoolMetrics(reg))
	// Versioned API. Method+wildcard patterns give automatic 405s (with an
	// Allow header) for wrong methods on a known path; the JSON-error
	// middleware rewrites those, and 404s, into the uniform envelope.
	routes := []struct {
		pattern string
		handler http.HandlerFunc
		legacy  bool // also mount the deprecated unversioned alias
	}{
		{"GET /clips/{id}", s.handleClip, true},
		{"GET /stats", s.handleStats, true},
		{"GET /resident", s.handleResident, true},
		{"POST /reset", s.handleReset, true},
		{"GET /snapshot", s.handleSnapshot, true},
		{"POST /restore", s.handleRestore, true},
		{"GET /policies", s.handlePolicies, true},
		{"GET /metrics", s.handleMetrics, false},
		{"GET /healthz", s.handleHealthz, false},
		{"GET /version", s.handleVersion, false},
	}
	for _, rt := range routes {
		method, path, _ := splitPattern(rt.pattern)
		v1 := method + " " + apiVersion + path
		handler := rt.handler
		if s.chaos != nil && rt.pattern == "GET /clips/{id}" {
			// The flaky link only affects clip fetches; the control and
			// observability routes stay reliable. Instrumenting outside the
			// chaos wrapper keeps injected latency visible in the route's
			// latency histogram.
			handler = s.chaos.wrap(handler)
		}
		h := s.instrument(v1, handler)
		s.mux.Handle(v1, h)
		if rt.legacy {
			// Deprecated unversioned alias for pre-v1 clients; it shares
			// the v1 route's latency series.
			s.mux.Handle(rt.pattern, deprecated(apiVersion+path, h))
		}
	}
	if cfg.pprof {
		s.mountPprof()
	}
	s.handler = withRequestID(withAccessLog(log, s.withHTTPMetrics(s.shed.wrap(withJSONErrors(s.mux)))))
	return s, nil
}

// splitPattern separates a "METHOD /path" route pattern.
func splitPattern(pattern string) (method, path string, ok bool) {
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == ' ' {
			return pattern[:i], pattern[i+1:], true
		}
	}
	return "", pattern, false
}

// deprecated wraps a legacy-alias handler, marking responses with a
// Deprecation header (RFC 9745) and a successor-version link so clients
// can discover the /v1 route.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "@1767225600") // 2026-01-01T00:00:00Z
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

// ServeHTTP implements http.Handler through the middleware chain:
// request-id → access log → HTTP metrics → load shed → JSON 404/405
// rewrite → mux.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// errorResponse is the uniform JSON error envelope of the v1 API.
type errorResponse struct {
	Error string `json:"error"`
}

// writeError reports an error as the uniform JSON envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	writeErrorHeaderless(w, status, format, args...)
}

// writeErrorHeaderless is writeError for callers that have already set the
// content type (the 404/405 rewriter, whose header map is shared with the
// wrapped writer).
func writeErrorHeaderless(w http.ResponseWriter, status int, format string, args ...interface{}) {
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: fmt.Sprintf(format, args...)})
}

// clipResponse is the JSON body of GET /v1/clips/{id}.
type clipResponse struct {
	Clip           media.ClipID `json:"clip"`
	Kind           string       `json:"kind"`
	SizeBytes      int64        `json:"sizeBytes"`
	Outcome        string       `json:"outcome"`
	Hit            bool         `json:"hit"`
	LatencySeconds float64      `json:"latencySeconds"`
}

// handleClip services GET /v1/clips/{id}.
func (s *server) handleClip(w http.ResponseWriter, r *http.Request) {
	raw := r.PathValue("id")
	id, err := strconv.Atoi(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad clip id %q", raw)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	clip, ok := s.cache.Repository().Lookup(media.ClipID(id))
	if !ok {
		writeError(w, http.StatusNotFound, "clip %d not in repository", id)
		return
	}
	out, err := s.cache.Request(clip.ID)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp := clipResponse{
		Clip:      clip.ID,
		Kind:      clip.Kind.String(),
		SizeBytes: int64(clip.Size),
		Outcome:   out.String(),
		Hit:       out.IsHit(),
	}
	if !out.IsHit() {
		lat, err := netsim.StartupLatency(clip, s.alloc, s.admission)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		resp.LatencySeconds = float64(lat)
	}
	writeJSON(w, resp)
}

// statsResponse is the JSON body of GET /v1/stats.
type statsResponse struct {
	Policy          string  `json:"policy"`
	Requests        uint64  `json:"requests"`
	Hits            uint64  `json:"hits"`
	HitRate         float64 `json:"hitRate"`
	ByteHitRate     float64 `json:"byteHitRate"`
	Evictions       uint64  `json:"evictions"`
	BytesFetched    int64   `json:"bytesFetched"`
	BytesFailed     int64   `json:"bytesFailed"`
	DegradedMisses  uint64  `json:"degradedMisses"`
	ResidentClips   int     `json:"residentClips"`
	UsedBytes       int64   `json:"usedBytes"`
	CapacityBytes   int64   `json:"capacityBytes"`
	BypassedMisses  uint64  `json:"bypassedMisses"`
	VictimCalls     uint64  `json:"victimCalls"`
	TheoreticalNote string  `json:"note,omitempty"`
}

// handleStats services GET /v1/stats.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.cache.Stats()
	writeJSON(w, statsResponse{
		Policy:         s.cache.Policy().Name(),
		Requests:       st.Requests,
		Hits:           st.Hits,
		HitRate:        st.HitRate(),
		ByteHitRate:    st.ByteHitRate(),
		Evictions:      st.Evictions,
		BytesFetched:   int64(st.BytesFetched),
		BytesFailed:    int64(st.BytesFailed),
		DegradedMisses: st.FetchFailed,
		ResidentClips:  s.cache.NumResident(),
		UsedBytes:      int64(s.cache.UsedBytes()),
		CapacityBytes:  int64(s.cache.Capacity()),
		BypassedMisses: st.Bypassed,
		VictimCalls:    st.VictimCalls,
	})
}

// residentClip is one entry of the detailed GET /v1/resident listing.
type residentClip struct {
	ID        media.ClipID `json:"id"`
	Kind      string       `json:"kind"`
	SizeBytes int64        `json:"sizeBytes"`
}

// residentResponse is the JSON body of GET /v1/resident (default, detailed
// format). Total is the full resident count; Clips is the requested page.
type residentResponse struct {
	Clips     []residentClip `json:"clips"`
	Total     int            `json:"total"`
	Offset    int            `json:"offset"`
	Limit     int            `json:"limit,omitempty"`
	UsedBytes int64          `json:"usedBytes"`
	FreeBytes int64          `json:"freeBytes"`
}

// residentIDsResponse is the bare-ID shape served under ?format=ids — the
// pre-pagination wire format, kept for existing clients.
type residentIDsResponse struct {
	Clips     []media.ClipID `json:"clips"`
	UsedBytes int64          `json:"usedBytes"`
	FreeBytes int64          `json:"freeBytes"`
}

// queryInt parses a non-negative integer query parameter, with def for
// absent.
func queryInt(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad %s %q: want a non-negative integer", name, raw)
	}
	return v, nil
}

// handleResident services GET /v1/resident with ?limit=/?offset= pagination.
// The default format lists per-clip detail (id, kind, sizeBytes); ?format=ids
// serves the bare-ID shape pre-pagination clients expect.
func (s *server) handleResident(w http.ResponseWriter, r *http.Request) {
	limit, err := queryInt(r, "limit", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	offset, err := queryInt(r, "offset", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	format := r.URL.Query().Get("format")
	if format != "" && format != "ids" && format != "detail" {
		writeError(w, http.StatusBadRequest, "bad format %q: want \"ids\" or \"detail\"", format)
		return
	}

	s.mu.Lock()
	ids := s.cache.ResidentIDs()
	used := int64(s.cache.UsedBytes())
	free := int64(s.cache.FreeBytes())
	repo := s.cache.Repository()
	total := len(ids)
	// Page in ascending-ID order. offset past the end is an empty page,
	// not an error, so clients can walk until exhaustion.
	if offset > total {
		offset = total
	}
	page := ids[offset:]
	if limit > 0 && limit < len(page) {
		page = page[:limit]
	}
	clips := make([]residentClip, len(page))
	for i, id := range page {
		c := repo.Clip(id)
		clips[i] = residentClip{ID: c.ID, Kind: c.Kind.String(), SizeBytes: int64(c.Size)}
	}
	s.mu.Unlock()

	if format == "ids" {
		writeJSON(w, residentIDsResponse{Clips: page, UsedBytes: used, FreeBytes: free})
		return
	}
	writeJSON(w, residentResponse{
		Clips:     clips,
		Total:     total,
		Offset:    offset,
		Limit:     limit,
		UsedBytes: used,
		FreeBytes: free,
	})
}

// handleReset services POST /v1/reset.
func (s *server) handleReset(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache.Reset()
	w.WriteHeader(http.StatusNoContent)
}

// handleSnapshot services GET /v1/snapshot: the cache's persistent state as
// a gob-encoded core.Snapshot, suitable for POSTing back to /v1/restore
// after a restart (the FMC device's disk-backed cache surviving a power
// cycle).
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	snap := s.cache.Snapshot()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := snap.WriteSnapshot(w); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// handleRestore services POST /v1/restore with a gob snapshot body.
func (s *server) handleRestore(w http.ResponseWriter, r *http.Request) {
	snap, err := core.ReadSnapshot(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.cache.Restore(snap); err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// policiesResponse is the JSON body of GET /v1/policies.
type policiesResponse struct {
	Current  string   `json:"current"`
	Policies []string `json:"policies"`
}

// handlePolicies services GET /v1/policies: the policy specs the registry
// can build (including any registered out-of-tree) and the one this server
// is running.
func (s *server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	current := s.cache.Policy().Name()
	s.mu.Unlock()
	writeJSON(w, policiesResponse{
		Current:  current,
		Policies: registry.Usages(),
	})
}

// writeJSON encodes v with an application/json content type.
func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	writeJSONBody(w, v)
}

// writeJSONBody encodes v after headers have been decided.
func writeJSONBody(w http.ResponseWriter, v interface{}) {
	if err := json.NewEncoder(w).Encode(v); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"mediacache/internal/api"
	"mediacache/internal/policy/registry"
)

// TestV1Routes drives the full request cycle through the versioned paths.
func TestV1Routes(t *testing.T) {
	_, ts := newTestServer(t)
	var clip api.Clip
	if resp := getJSON(t, ts.URL+"/v1/clips/2", &clip); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/clips/2 status = %d", resp.StatusCode)
	}
	if clip.Hit || clip.Outcome != "miss-cached" {
		t.Fatalf("first v1 request = %+v, want miss-cached", clip)
	}
	var st api.Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Requests != 1 {
		t.Fatalf("v1 stats = %+v, want 1 request", st)
	}
	var res api.Resident
	getJSON(t, ts.URL+"/v1/resident", &res)
	if len(res.Clips) != 1 {
		t.Fatalf("v1 resident = %+v, want 1 clip", res)
	}
	resp, err := http.Post(ts.URL+"/v1/reset", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("POST /v1/reset status = %d", resp.StatusCode)
	}
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Requests != 0 {
		t.Fatalf("v1 stats after reset = %+v", st)
	}
}

// TestV1MethodNotAllowed checks the automatic 405s of the method patterns.
func TestV1MethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/clips/1", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/clips/1 status = %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/reset", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/reset status = %d", resp.StatusCode)
	}
}

// TestV1ErrorEnvelope pins the uniform {"error": "..."} JSON error shape.
func TestV1ErrorEnvelope(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/v1/clips/notanumber", "/v1/clips/99999"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s Content-Type = %q, want application/json", path, ct)
		}
		var envelope api.Error
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
			t.Fatalf("%s: error body is not the JSON envelope: %v", path, err)
		}
		resp.Body.Close()
		if envelope.Error == "" {
			t.Errorf("%s: empty error message", path)
		}
	}
}

// TestLegacyAliasGone checks the retired unversioned paths answer 410 Gone
// in the JSON envelope with a Link to the /v1 successor, and that the /v1
// paths themselves are unaffected.
func TestLegacyAliasGone(t *testing.T) {
	_, ts := newTestServer(t)
	for path, successor := range map[string]string{
		"/stats":    "/v1/stats",
		"/clips/2":  "/v1/clips/{id}",
		"/resident": "/v1/resident",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusGone {
			t.Errorf("legacy %s status = %d, want 410", path, resp.StatusCode)
		}
		if link := resp.Header.Get("Link"); !strings.Contains(link, successor) {
			t.Errorf("legacy %s Link = %q, want successor %s", path, link, successor)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("legacy %s Content-Type = %q, want application/json", path, ct)
		}
		var envelope api.Error
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
			t.Fatalf("legacy %s: 410 body is not the JSON envelope: %v", path, err)
		}
		resp.Body.Close()
		if !strings.Contains(envelope.Error, "/v1/") {
			t.Errorf("legacy %s error %q should name the successor", path, envelope.Error)
		}
	}
	// The retired aliases must not count as cache traffic.
	var st api.Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Requests != 0 {
		t.Errorf("legacy 410s reached the cache: %d requests", st.Requests)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/v1/stats status = %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("Deprecation") != "" {
		t.Error("/v1/stats must not be marked deprecated")
	}
}

// TestV1Policies checks the registry-backed discovery endpoint.
func TestV1Policies(t *testing.T) {
	_, ts := newTestServer(t)
	var pol api.Policies
	if resp := getJSON(t, ts.URL+"/v1/policies", &pol); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/policies status = %d", resp.StatusCode)
	}
	if pol.Current != "DYNSimple(K=2)" {
		t.Errorf("current policy = %q", pol.Current)
	}
	want := registry.Usages()
	if len(pol.Policies) != len(want) {
		t.Fatalf("policies = %v, want %v", pol.Policies, want)
	}
	for i := range want {
		if pol.Policies[i] != want[i] {
			t.Fatalf("policies[%d] = %q, want %q", i, pol.Policies[i], want[i])
		}
	}
}

// TestV1Shards checks the per-shard listing: one entry per shard in index
// order, capacities summing to the stats capacity, and requests summing to
// the aggregate count.
func TestV1Shards(t *testing.T) {
	cfg := testConfig()
	cfg.shards = 4
	_, ts := newTestServerConfig(t, cfg)
	for i := 1; i <= 20; i++ {
		resp, err := http.Get(ts.URL + "/v1/clips/" + strconv.Itoa(i))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	var sh api.Shards
	if resp := getJSON(t, ts.URL+"/v1/shards", &sh); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/shards status = %d", resp.StatusCode)
	}
	if len(sh.Shards) != 4 {
		t.Fatalf("shard count = %d, want 4", len(sh.Shards))
	}
	var st api.Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Shards != 4 {
		t.Errorf("stats shards field = %d, want 4", st.Shards)
	}
	var requests, hits uint64
	var capacity, used int64
	for i, s := range sh.Shards {
		if s.Shard != i {
			t.Errorf("shard %d reports index %d", i, s.Shard)
		}
		requests += s.Requests
		hits += s.Hits
		capacity += s.CapacityBytes
		used += s.UsedBytes
		if s.UsedBytes > s.CapacityBytes {
			t.Errorf("shard %d: used %d > capacity %d", i, s.UsedBytes, s.CapacityBytes)
		}
	}
	if requests != st.Requests || hits != st.Hits {
		t.Errorf("per-shard sums (%d req, %d hits) != aggregate (%d, %d)",
			requests, hits, st.Requests, st.Hits)
	}
	if capacity != st.CapacityBytes {
		t.Errorf("per-shard capacity sum %d != aggregate %d", capacity, st.CapacityBytes)
	}
	if used != st.UsedBytes {
		t.Errorf("per-shard used sum %d != aggregate %d", used, st.UsedBytes)
	}
}

// TestV1StatsShardsFieldOmitted pins the single-shard wire format: the raw
// /v1/stats body must not grow a shards key, so pre-sharding clients (and
// goldens) see byte-identical responses.
func TestV1StatsShardsFieldOmitted(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), `"shards"`) {
		t.Fatalf("single-shard stats body contains a shards key:\n%s", body)
	}
}

package main

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"mediacache/internal/policy/registry"
)

// TestV1Routes drives the full request cycle through the versioned paths.
func TestV1Routes(t *testing.T) {
	_, ts := newTestServer(t)
	var clip clipResponse
	if resp := getJSON(t, ts.URL+"/v1/clips/2", &clip); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/clips/2 status = %d", resp.StatusCode)
	}
	if clip.Hit || clip.Outcome != "miss-cached" {
		t.Fatalf("first v1 request = %+v, want miss-cached", clip)
	}
	var st statsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Requests != 1 {
		t.Fatalf("v1 stats = %+v, want 1 request", st)
	}
	var res residentResponse
	getJSON(t, ts.URL+"/v1/resident", &res)
	if len(res.Clips) != 1 {
		t.Fatalf("v1 resident = %+v, want 1 clip", res)
	}
	resp, err := http.Post(ts.URL+"/v1/reset", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("POST /v1/reset status = %d", resp.StatusCode)
	}
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Requests != 0 {
		t.Fatalf("v1 stats after reset = %+v", st)
	}
}

// TestV1MethodNotAllowed checks the automatic 405s of the method patterns.
func TestV1MethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/clips/1", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/clips/1 status = %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/reset", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/reset status = %d", resp.StatusCode)
	}
}

// TestV1ErrorEnvelope pins the uniform {"error": "..."} JSON error shape.
func TestV1ErrorEnvelope(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/v1/clips/notanumber", "/v1/clips/99999"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s Content-Type = %q, want application/json", path, ct)
		}
		var envelope errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
			t.Fatalf("%s: error body is not the JSON envelope: %v", path, err)
		}
		resp.Body.Close()
		if envelope.Error == "" {
			t.Errorf("%s: empty error message", path)
		}
	}
}

// TestLegacyAliasDeprecation checks that unversioned paths still work but
// carry deprecation metadata, and that /v1 paths do not.
func TestLegacyAliasDeprecation(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") == "" {
		t.Error("legacy /stats missing Deprecation header")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "/v1/stats") {
		t.Errorf("legacy /stats Link = %q, want successor /v1/stats", link)
	}
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "" {
		t.Error("/v1/stats must not be marked deprecated")
	}
}

// TestV1Policies checks the registry-backed discovery endpoint.
func TestV1Policies(t *testing.T) {
	_, ts := newTestServer(t)
	var pol policiesResponse
	if resp := getJSON(t, ts.URL+"/v1/policies", &pol); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/policies status = %d", resp.StatusCode)
	}
	if pol.Current != "DYNSimple(K=2)" {
		t.Errorf("current policy = %q", pol.Current)
	}
	want := registry.Usages()
	if len(pol.Policies) != len(want) {
		t.Fatalf("policies = %v, want %v", pol.Policies, want)
	}
	for i := range want {
		if pol.Policies[i] != want[i] {
			t.Fatalf("policies[%d] = %q, want %q", i, pol.Policies[i], want[i])
		}
	}
}

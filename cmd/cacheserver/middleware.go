package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// requestIDHeader carries the per-request correlation id. An incoming
// value is propagated (so a device or gateway can stitch its own traces);
// otherwise the server mints one. The id is echoed on the response and
// attached to the access log.
const requestIDHeader = "X-Request-ID"

// ctxKeyRequestID keys the request id in the request context.
type ctxKeyRequestID struct{}

// requestIDFrom returns the request id stored by the middleware, or "".
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID{}).(string)
	return id
}

// ridCounter disambiguates minted ids if the random source ever fails.
var ridCounter atomic.Uint64

// newRequestID mints a 16-hex-char random id.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%d", ridCounter.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// withRequestID propagates or mints the correlation id.
func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(requestIDHeader)
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(requestIDHeader, id)
		ctx := context.WithValue(r.Context(), ctxKeyRequestID{}, id)
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// statusRecorder captures the status code and body size for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// withAccessLog emits one structured slog record per request.
func withAccessLog(log *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		log.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("id", requestIDFrom(r.Context())),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status),
			slog.Int("bytes", rec.bytes),
			slog.Duration("duration", time.Since(start)),
		)
	})
}

// withHTTPMetrics counts requests and tracks how many are in flight.
func (s *server) withHTTPMetrics(next http.Handler) http.Handler {
	total := s.reg.Counter("mediacache_http_requests_total", "HTTP requests served.")
	inFlight := s.reg.Gauge("mediacache_http_in_flight", "HTTP requests currently being served.")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		total.Inc()
		inFlight.Inc()
		defer inFlight.Dec()
		next.ServeHTTP(w, r)
	})
}

// errorRewriter turns the mux's plain-text 404/405 fallbacks into the v1
// JSON error envelope. Route handlers always set an application/json (or
// octet-stream) content type before writing, so a text/plain 404/405 can
// only come from net/http's defaults; those are intercepted, everything
// else passes through untouched — including the Allow header the mux sets
// on 405s.
type errorRewriter struct {
	http.ResponseWriter
	req     *http.Request
	rewrote bool
}

func (w *errorRewriter) WriteHeader(code int) {
	if (code == http.StatusNotFound || code == http.StatusMethodNotAllowed) &&
		strings.HasPrefix(w.Header().Get("Content-Type"), "text/plain") {
		w.rewrote = true
		w.Header().Set("Content-Type", "application/json")
		msg := "no route"
		if code == http.StatusMethodNotAllowed {
			msg = "method not allowed"
		}
		writeErrorHeaderless(w.ResponseWriter, code, "%s: %s %s", msg, w.req.Method, w.req.URL.Path)
		return
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *errorRewriter) Write(b []byte) (int, error) {
	if w.rewrote {
		// Swallow the plain-text body; the JSON envelope already went out.
		return len(b), nil
	}
	return w.ResponseWriter.Write(b)
}

// withJSONErrors wraps the mux so unmatched paths and wrong-method requests
// answer with the uniform JSON envelope instead of net/http plain text.
func withJSONErrors(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(&errorRewriter{ResponseWriter: w, req: r}, r)
	})
}

// instrument attaches a per-route latency histogram to h, labeled with the
// route pattern (method + path template). Legacy aliases reuse their v1
// route's histogram, so a family has one series per canonical route.
func (s *server) instrument(pattern string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.reg.Histogram("mediacache_http_request_seconds",
		"HTTP request latency by route.", httpLatencyBuckets,
		// The label set is fixed per registration, so lookup cost is zero
		// on the request path.
		metricLabelRoute(pattern))
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		hist.Observe(time.Since(start).Seconds())
	}
}

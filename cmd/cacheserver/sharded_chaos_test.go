package main

// sharded_chaos_test.go is the race-detector acceptance test of the
// sharded front-end: concurrent clients hammer a multi-shard server
// through a 20% fault profile with load shedding enabled, and the
// aggregated statistics snapshot must still satisfy the engine's counting
// identities exactly — no lost updates, no double counts.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mediacache/internal/api"
	"mediacache/internal/fault"
)

func TestShardedChaosDriveIdentities(t *testing.T) {
	cfg := testConfig()
	cfg.shards = 4
	cfg.maxInFlight = 64
	// 20% of clip fetches fail at the HTTP layer: errors, stalls (1ms
	// hold) and partial deliveries. Faulted and shed requests never reach
	// the cache, so the driver counts only 200s against the engine.
	cfg.faults = fault.Profile{ErrorRate: 0.1, TimeoutRate: 0.05, PartialRate: 0.05,
		Hold: time.Millisecond}
	srv, ts := newTestServerConfig(t, cfg)

	const (
		clients  = 8
		perEach  = 150
		universe = 576
	)
	var (
		wg       sync.WaitGroup
		outcomes sync.Map // outcome string -> *atomic.Uint64
		served   atomic.Uint64
	)
	count := func(outcome string) {
		v, _ := outcomes.LoadOrStore(outcome, new(atomic.Uint64))
		v.(*atomic.Uint64).Add(1)
	}
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perEach; i++ {
				id := (g*perEach+i*7)%universe + 1
				resp, err := http.Get(fmt.Sprintf("%s/v1/clips/%d", ts.URL, id))
				if err != nil {
					t.Errorf("request failed: %v", err)
					return
				}
				if resp.StatusCode == http.StatusOK {
					var clip api.Clip
					if err := json.NewDecoder(resp.Body).Decode(&clip); err != nil {
						t.Errorf("bad clip body: %v", err)
						resp.Body.Close()
						return
					}
					served.Add(1)
					count(clip.Outcome)
				}
				resp.Body.Close()
			}
		}(g)
	}
	wg.Wait()

	load := func(outcome string) uint64 {
		if v, ok := outcomes.Load(outcome); ok {
			return v.(*atomic.Uint64).Load()
		}
		return 0
	}
	st := srv.pool.Stats()
	if st.Requests != served.Load() {
		t.Fatalf("aggregate requests %d != driver-observed 200s %d", st.Requests, served.Load())
	}
	if st.Hits != load("hit") {
		t.Errorf("aggregate hits %d != driver-observed hits %d", st.Hits, load("hit"))
	}
	bypassed := load("miss-bypassed") + load("miss-too-large") + load("miss-error")
	if st.Bypassed != bypassed {
		t.Errorf("aggregate bypassed %d != driver-observed %d", st.Bypassed, bypassed)
	}
	// The engine's counting identity on the aggregated snapshot.
	if st.Requests != st.Hits+load("miss-cached")+st.Bypassed+st.FetchFailed {
		t.Errorf("requests %d != hits %d + missCached %d + bypassed %d + fetchFailed %d",
			st.Requests, st.Hits, load("miss-cached"), st.Bypassed, st.FetchFailed)
	}
	// Byte identity: every referenced byte was served from cache, fetched,
	// or failed.
	if st.BytesHit+st.BytesFetched+st.BytesFailed != st.BytesReferenced {
		t.Errorf("byte identity violated: hit %d + fetched %d + failed %d != referenced %d",
			st.BytesHit, st.BytesFetched, st.BytesFailed, st.BytesReferenced)
	}
	// The per-shard listing must sum to the same aggregate.
	var sum uint64
	for _, sh := range srv.pool.ShardStats() {
		sum += sh.Stats.Requests
		if sh.UsedBytes > sh.Capacity {
			t.Errorf("shard %d: used %v exceeds capacity %v", sh.Index, sh.UsedBytes, sh.Capacity)
		}
	}
	if sum != st.Requests {
		t.Errorf("per-shard request sum %d != aggregate %d", sum, st.Requests)
	}
}

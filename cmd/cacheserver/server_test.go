package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"mediacache/internal/media"
)

// testConfig is the baseline server configuration the tests build on.
func testConfig() config {
	return config{policy: "dynsimple:2", ratio: 0.125, alloc: 4 * media.Mbps, admission: 0.5, seed: 1}
}

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	return newTestServerConfig(t, testConfig())
}

func newTestServerConfig(t *testing.T, cfg config) (*server, *httptest.Server) {
	t.Helper()
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, v interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestNewServerValidation(t *testing.T) {
	cfg := testConfig()
	cfg.policy = "bogus"
	if _, err := newServer(cfg); err == nil {
		t.Error("bad policy should fail")
	}
	cfg = testConfig()
	cfg.alloc = 0
	if _, err := newServer(cfg); err == nil {
		t.Error("zero bandwidth should fail")
	}
	cfg = testConfig()
	cfg.ratio = 2.0
	if _, err := newServer(cfg); err == nil {
		t.Error("ratio >= 1 should fail")
	}
}

func TestClipMissThenHit(t *testing.T) {
	_, ts := newTestServer(t)
	var first, second clipResponse
	resp := getJSON(t, ts.URL+"/clips/2", &first)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if first.Hit || first.Outcome != "miss-cached" {
		t.Fatalf("first request = %+v, want miss-cached", first)
	}
	if first.LatencySeconds <= 0 {
		t.Fatal("miss should report startup latency")
	}
	getJSON(t, ts.URL+"/clips/2", &second)
	if !second.Hit || second.LatencySeconds != 0 {
		t.Fatalf("second request = %+v, want zero-latency hit", second)
	}
	if second.Kind != "audio" || second.SizeBytes <= 0 {
		t.Fatalf("clip metadata wrong: %+v", second)
	}
}

func TestClipErrors(t *testing.T) {
	_, ts := newTestServer(t)
	if resp := getJSON(t, ts.URL+"/clips/notanumber", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id status = %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/clips/99999", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown clip status = %d", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/clips/1", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /clips status = %d", resp.StatusCode)
	}
}

func TestStatsAndResident(t *testing.T) {
	_, ts := newTestServer(t)
	for i := 1; i <= 6; i++ {
		getJSON(t, fmt.Sprintf("%s/clips/%d", ts.URL, i), nil)
	}
	getJSON(t, ts.URL+"/clips/2", nil) // a hit
	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Requests != 7 || st.Hits < 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Policy != "DYNSimple(K=2)" {
		t.Fatalf("policy = %q", st.Policy)
	}
	if st.CapacityBytes <= 0 || st.UsedBytes <= 0 {
		t.Fatalf("byte accounting = %+v", st)
	}
	var res residentResponse
	getJSON(t, ts.URL+"/resident", &res)
	if len(res.Clips) == 0 {
		t.Fatal("no resident clips after requests")
	}
	if res.UsedBytes+res.FreeBytes != st.CapacityBytes {
		t.Fatal("used + free != capacity")
	}
}

func TestReset(t *testing.T) {
	_, ts := newTestServer(t)
	getJSON(t, ts.URL+"/clips/1", nil)
	resp, err := http.Post(ts.URL+"/reset", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("reset status = %d", resp.StatusCode)
	}
	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Requests != 0 || st.ResidentClips != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
	if resp := getJSON(t, ts.URL+"/reset", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /reset status = %d", resp.StatusCode)
	}
}

func TestConcurrentRequestsSafe(t *testing.T) {
	_, ts := newTestServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				resp, err := http.Get(fmt.Sprintf("%s/clips/%d", ts.URL, (g*30+i)%576+1))
				if err == nil {
					resp.Body.Close()
				}
			}
		}(g)
	}
	wg.Wait()
	var st statsResponse
	getJSON(t, ts.URL+"/stats", &st)
	if st.Requests != 240 {
		t.Fatalf("requests = %d, want 240 (lost updates under concurrency?)", st.Requests)
	}
	if st.UsedBytes > st.CapacityBytes {
		t.Fatal("capacity invariant violated under concurrency")
	}
}

func TestSnapshotRestoreCycle(t *testing.T) {
	_, ts := newTestServer(t)
	for i := 1; i <= 4; i++ {
		getJSON(t, fmt.Sprintf("%s/clips/%d", ts.URL, i), nil)
	}
	// Capture the snapshot ("power down").
	resp, err := http.Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d err %v", resp.StatusCode, err)
	}

	// A fresh server ("after reboot") restores it.
	_, ts2 := newTestServer(t)
	resp, err = http.Post(ts2.URL+"/restore", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("restore status %d", resp.StatusCode)
	}
	var st statsResponse
	getJSON(t, ts2.URL+"/stats", &st)
	if st.Requests != 4 || st.ResidentClips == 0 {
		t.Fatalf("restored stats = %+v", st)
	}
	// Restored residency turns repeats into hits.
	var clip clipResponse
	getJSON(t, ts2.URL+"/clips/2", &clip)
	if !clip.Hit {
		t.Fatal("restored clip should hit")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/restore", "application/octet-stream",
		bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage restore status %d", resp.StatusCode)
	}
	// Wrong methods.
	resp, _ = http.Post(ts.URL+"/snapshot", "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /snapshot status %d", resp.StatusCode)
	}
}

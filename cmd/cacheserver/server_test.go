package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"mediacache/internal/api"
	"mediacache/internal/media"
)

// testConfig is the baseline server configuration the tests build on: a
// single shard, so every request reproduces the pre-sharding engine's
// decisions exactly.
func testConfig() config {
	return config{policy: "dynsimple:2", ratio: 0.125, alloc: 4 * media.Mbps, admission: 0.5, seed: 1}
}

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	return newTestServerConfig(t, testConfig())
}

func newTestServerConfig(t *testing.T, cfg config) (*server, *httptest.Server) {
	t.Helper()
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, v interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestNewServerValidation(t *testing.T) {
	cfg := testConfig()
	cfg.policy = "bogus"
	if _, err := newServer(cfg); err == nil {
		t.Error("bad policy should fail")
	}
	cfg = testConfig()
	cfg.alloc = 0
	if _, err := newServer(cfg); err == nil {
		t.Error("zero bandwidth should fail")
	}
	cfg = testConfig()
	cfg.ratio = 2.0
	if _, err := newServer(cfg); err == nil {
		t.Error("ratio >= 1 should fail")
	}
	cfg = testConfig()
	cfg.ratio = 2.0
	cfg.shards = 4
	if _, err := newServer(cfg); err == nil {
		t.Error("ratio >= 1 should fail regardless of shard count")
	}
}

func TestClipMissThenHit(t *testing.T) {
	_, ts := newTestServer(t)
	var first, second api.Clip
	resp := getJSON(t, ts.URL+"/v1/clips/2", &first)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if first.Hit || first.Outcome != "miss-cached" {
		t.Fatalf("first request = %+v, want miss-cached", first)
	}
	if first.LatencySeconds <= 0 {
		t.Fatal("miss should report startup latency")
	}
	getJSON(t, ts.URL+"/v1/clips/2", &second)
	if !second.Hit || second.LatencySeconds != 0 {
		t.Fatalf("second request = %+v, want zero-latency hit", second)
	}
	if second.Kind != "audio" || second.SizeBytes <= 0 {
		t.Fatalf("clip metadata wrong: %+v", second)
	}
}

func TestClipErrors(t *testing.T) {
	_, ts := newTestServer(t)
	if resp := getJSON(t, ts.URL+"/v1/clips/notanumber", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id status = %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/clips/99999", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown clip status = %d", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/v1/clips/1", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/clips status = %d", resp.StatusCode)
	}
}

func TestStatsAndResident(t *testing.T) {
	_, ts := newTestServer(t)
	for i := 1; i <= 6; i++ {
		getJSON(t, fmt.Sprintf("%s/v1/clips/%d", ts.URL, i), nil)
	}
	getJSON(t, ts.URL+"/v1/clips/2", nil) // a hit
	var st api.Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Requests != 7 || st.Hits < 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Policy != "DYNSimple(K=2)" {
		t.Fatalf("policy = %q", st.Policy)
	}
	if st.CapacityBytes <= 0 || st.UsedBytes <= 0 {
		t.Fatalf("byte accounting = %+v", st)
	}
	if st.Shards != 0 {
		t.Fatalf("single-shard stats must omit the shards field, got %d", st.Shards)
	}
	var res api.Resident
	getJSON(t, ts.URL+"/v1/resident", &res)
	if len(res.Clips) == 0 {
		t.Fatal("no resident clips after requests")
	}
	if res.UsedBytes+res.FreeBytes != st.CapacityBytes {
		t.Fatal("used + free != capacity")
	}
}

func TestReset(t *testing.T) {
	_, ts := newTestServer(t)
	getJSON(t, ts.URL+"/v1/clips/1", nil)
	resp, err := http.Post(ts.URL+"/v1/reset", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("reset status = %d", resp.StatusCode)
	}
	var st api.Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Requests != 0 || st.ResidentClips != 0 {
		t.Fatalf("stats after reset = %+v", st)
	}
	if resp := getJSON(t, ts.URL+"/v1/reset", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/reset status = %d", resp.StatusCode)
	}
}

func TestConcurrentRequestsSafe(t *testing.T) {
	_, ts := newTestServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				resp, err := http.Get(fmt.Sprintf("%s/v1/clips/%d", ts.URL, (g*30+i)%576+1))
				if err == nil {
					resp.Body.Close()
				}
			}
		}(g)
	}
	wg.Wait()
	var st api.Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Requests != 240 {
		t.Fatalf("requests = %d, want 240 (lost updates under concurrency?)", st.Requests)
	}
	if st.UsedBytes > st.CapacityBytes {
		t.Fatal("capacity invariant violated under concurrency")
	}
}

func TestSnapshotRestoreCycle(t *testing.T) {
	_, ts := newTestServer(t)
	for i := 1; i <= 4; i++ {
		getJSON(t, fmt.Sprintf("%s/v1/clips/%d", ts.URL, i), nil)
	}
	// Capture the snapshot ("power down").
	resp, err := http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d err %v", resp.StatusCode, err)
	}

	// A fresh server ("after reboot") restores it.
	_, ts2 := newTestServer(t)
	resp, err = http.Post(ts2.URL+"/v1/restore", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("restore status %d", resp.StatusCode)
	}
	var st api.Stats
	getJSON(t, ts2.URL+"/v1/stats", &st)
	if st.Requests != 4 || st.ResidentClips == 0 {
		t.Fatalf("restored stats = %+v", st)
	}
	// Restored residency turns repeats into hits.
	var clip api.Clip
	getJSON(t, ts2.URL+"/v1/clips/2", &clip)
	if !clip.Hit {
		t.Fatal("restored clip should hit")
	}
}

// TestSnapshotPortableAcrossShardCounts captures a single-shard snapshot
// and restores it into a sharded server: the resident set re-partitions by
// the routing hash and repeats hit.
func TestSnapshotPortableAcrossShardCounts(t *testing.T) {
	_, ts := newTestServer(t)
	for i := 1; i <= 4; i++ {
		getJSON(t, fmt.Sprintf("%s/v1/clips/%d", ts.URL, i), nil)
	}
	resp, err := http.Get(ts.URL + "/v1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	cfg := testConfig()
	cfg.shards = 4
	_, ts2 := newTestServerConfig(t, cfg)
	resp, err = http.Post(ts2.URL+"/v1/restore", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("cross-shard restore status %d", resp.StatusCode)
	}
	var clip api.Clip
	getJSON(t, ts2.URL+"/v1/clips/2", &clip)
	if !clip.Hit {
		t.Fatal("clip restored into the sharded pool should hit")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/restore", "application/octet-stream",
		bytes.NewReader([]byte("junk")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage restore status %d", resp.StatusCode)
	}
	// Wrong methods.
	resp, _ = http.Post(ts.URL+"/v1/snapshot", "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/snapshot status %d", resp.StatusCode)
	}
}

package main

// resilience_test.go is the end-to-end acceptance test of the fault layer:
// a cacheclient driving a cacheserver whose clip route fails 20% of
// fetches. Every request must eventually succeed through retries, and the
// client's resilience counters must be visible on the same /v1/metrics
// page as the server's engine counters.

import (
	"context"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"mediacache/internal/cacheclient"
	"mediacache/internal/fault"
	"mediacache/internal/media"
	"mediacache/internal/obs"
)

func TestClientResilienceUnderChaos(t *testing.T) {
	// 20% of fetches fail: outright errors, stalls (1ms hold) and partial
	// deliveries, all answered with retryable 5xx statuses.
	profile := fault.Profile{ErrorRate: 0.1, TimeoutRate: 0.05, PartialRate: 0.05,
		Hold: time.Millisecond}
	srv, ts := newTestServerConfig(t, chaosConfig(profile))

	client, err := cacheclient.New(cacheclient.Config{
		BaseURL:     ts.URL,
		Seed:        42,
		MaxAttempts: 20,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		Observer:    obs.NewClientMetrics(srv.reg),
		Breaker:     cacheclient.BreakerConfig{Threshold: 3, Cooldown: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	const requests = 300
	for i := 0; i < requests; i++ {
		id := media.ClipID(i%30 + 1)
		res, err := client.Clip(ctx, id)
		if err != nil {
			t.Fatalf("request %d (clip %d) did not survive chaos: %v", i, id, err)
		}
		if res.Clip != id {
			t.Fatalf("request %d returned clip %d, want %d", i, res.Clip, id)
		}
	}

	// At a 20% failure rate over 300 requests, retries are statistically
	// certain (P(no fault) ≈ 1e-29 for the fixed seed this test pins).
	if client.Retries() == 0 {
		t.Fatal("no retries under a 20% failure profile")
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests == 0 || stats.Hits == 0 {
		t.Fatalf("server saw no traffic: %+v", stats)
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"# TYPE mediacache_client_retries_total counter",
		"# TYPE mediacache_client_breaker_opens_total counter",
		"# TYPE mediacache_client_breaker_state gauge",
		`mediacache_faults_injected_total{kind="error"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/v1/metrics missing %q", want)
		}
	}
	// The registry's retry counter must match the client's own count.
	wantLine := "mediacache_client_retries_total " + strconv.FormatUint(client.Retries(), 10)
	if !strings.Contains(text, wantLine) {
		t.Errorf("/v1/metrics missing %q", wantLine)
	}
}

// Command cacheserver runs a mobile-device clip cache behind an HTTP API —
// a minimal service harness showing the library embedded in a long-running
// program rather than a batch simulation.
//
// The cache is a hash-partitioned pool of engines (-shards, default
// GOMAXPROCS): each shard owns a slice of the clip-ID space, its own
// replacement-policy instance and its own lock, so concurrent requests for
// clips on different shards proceed in parallel. -shards 1 reproduces the
// single serialized engine of earlier versions exactly, decision for
// decision.
//
// With -segment the cache tracks residency per fixed-size segment instead of
// per whole clip: GET /v1/clips/{id} becomes a partial-content API (a Range
// header selects a byte range, serviced at segment granularity with 206 +
// Content-Range; unsatisfiable and multi-range requests answer 416), misses
// fetch only the missing segments, and -prefix pins the first N segments of
// every clip so eviction trims tails first — the prefix-caching behaviour
// that hides streaming startup latency. Without -segment every wire response
// is byte-identical to pre-segment servers.
//
// With -ttl every cached clip expires after that many virtual ticks:
// expired clips are invalidated lazily on access and by an amortized sweep
// riding the engine's existing drain points, so the lock-reduced hit path
// stays lock-free. DELETE /v1/clips/{id} invalidates a clip on demand —
// the catalog-churn operation a publisher issues when a clip is replaced.
// Invalidations are neither requests nor evictions: they never perturb the
// hit/miss identities. Without -ttl and without DELETEs every response is
// byte-identical to pre-churn servers.
//
// With -node-id the server joins a cooperative cluster tier: -peers names
// the other ring members, and a consistent-hash ring assigns every clip
// -replicas owners. On a local miss the clip's remote owners are consulted
// over hedged peer reads (the next replica is tried after -hedge) before
// the origin fetch is booked; a peer win charges startup latency to the
// -peer-alloc node-to-node link instead of the origin link. Cached peer
// residency digests, refreshed every -digest-interval, veto most fruitless
// probes without a round trip. See GET /v1/cluster for ring and
// cooperative state. Without -node-id every response is byte-identical to
// pre-cluster servers.
//
// Endpoints (v1):
//
//	GET  /v1/clips/{id}  service a reference to clip id; returns the outcome,
//	                     whether it hit, and the startup latency the device
//	                     would observe at the configured link bandwidth.
//	                     Honors single-range Range headers (206/200/416) and
//	                     reports cached bytes in X-Cache-Resident-Bytes
//	HEAD /v1/clips/{id}  the clip's Content-Length, Accept-Ranges and current
//	                     X-Cache-Resident-Bytes without touching the cache
//	DELETE /v1/clips/{id} invalidate the clip's cached bytes immediately
//	                     (204; idempotent; X-Cache-Invalidated-Bytes reports
//	                     the freed bytes) without touching request statistics
//	GET  /v1/stats       accumulated cache statistics, aggregated over all
//	                     shards under one consistent snapshot (plus segment
//	                     counters on segmented servers)
//	GET  /v1/resident    resident clips with per-clip detail; supports
//	                     ?limit=/?offset= pagination, ?format=ids for the
//	                     bare-ID shape, and ?format=extents for each clip's
//	                     cached byte runs
//	GET  /v1/shards      per-shard requests, hits, occupancy and capacity
//	POST /v1/reset       clear the cache, statistics and policy state
//	GET  /v1/snapshot    gob-encoded persistent cache state (portable across
//	                     shard counts)
//	POST /v1/restore     restore a previously captured snapshot
//	GET  /v1/policies    policy specs the registry can build
//	GET  /v1/cluster     ring membership, per-peer breaker/digest state and
//	                     cooperative counters (clustered servers only)
//	GET  /v1/cluster/digest     this node's residency digest for peers
//	GET  /v1/cluster/clips/{id} peer-serve read: 200 iff fully resident
//	                     here; never touches local request statistics
//	GET  /v1/metrics     Prometheus text exposition: engine counters,
//	                     per-shard gauges, per-route HTTP latency histograms,
//	                     sweep-pool gauges
//	GET  /v1/healthz     liveness plus the used ≤ capacity invariant
//	GET  /v1/version     API version, go version, policy and build info
//
// Errors — including unmatched paths and wrong methods — are returned as a
// uniform JSON envelope {"error": "..."}; 405s carry an Allow header. Every
// response carries an X-Request-ID (propagated from the request when
// present), and each request is access-logged through log/slog. With -pprof
// the net/http/pprof profiles mount under /debug/pprof/.
//
// The unversioned pre-v1 paths (/clips/{id}, /stats, ...) are retired:
// they answer 410 Gone with the JSON error envelope and a Link header
// naming the /v1 successor, after serving Deprecation headers for a full
// release cycle.
//
// The failure and degradation layer (all off by default): -faults injects
// a deterministic, seed-replayable fault schedule into the clip route
// (errors → 502, stalls → 504 after the profile's hold, partial deliveries
// → 502, plus injected latency); -maxinflight sheds requests with 429 and
// a Retry-After hint once too many are in flight; -memlimit bypasses cache
// admission (stream, don't cache) while the process heap exceeds the
// bound. Injected faults, shed requests and the degraded-mode flag are all
// visible in /v1/metrics.
//
// Usage:
//
//	cacheserver -addr :8377 -policy dynsimple:2 -ratio 0.125 -alloc 4000000 [-shards 8]
//	            [-segment 268435456] [-prefix 2] [-ttl 5000] [-pprof] [-trace]
//	            [-faults p=0.05] [-maxinflight 256] [-memlimit 1073741824]
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"runtime"

	"mediacache/internal/cluster"
	"mediacache/internal/fault"
	"mediacache/internal/media"
	"mediacache/internal/sim"
	"mediacache/internal/vtime"
	"mediacache/internal/zipf"
)

func main() {
	fs := flag.NewFlagSet("cacheserver", flag.ExitOnError)
	addr := fs.String("addr", ":8377", "listen address")
	policy := fs.String("policy", "dynsimple:2", "replacement policy spec")
	ratio := fs.Float64("ratio", 0.125, "cache size as a fraction of the repository")
	alloc := fs.Int64("alloc", 4_000_000, "per-stream network bandwidth in bits/second")
	admission := fs.Float64("admission", 0.5, "admission-control overhead in seconds")
	seed := fs.Uint64("seed", sim.DefaultSeed, "policy tie-break seed")
	shards := fs.Int("shards", runtime.GOMAXPROCS(0), "cache shard count (1 = the single serialized engine)")
	segment := fs.Int64("segment", 0, "segment size in bytes for segment-granular residency (0 = whole-clip caching)")
	prefix := fs.Int("prefix", 0, "pin the first N segments of every clip (requires -segment)")
	ttl := fs.Int64("ttl", 0, "clip time-to-live in virtual ticks; expired clips are invalidated (0 = no expiry)")
	pprofFlag := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	trace := fs.Bool("trace", false, "log every cache event (hit/miss/eviction/bypass/restore) at debug level")
	reqlogPath := fs.String("reqlog", "", "append an NDJSON request log (one api.RequestLogEntry per serviced clip reference) to this file, for cmd/traceql (\"\" disables, \"-\" = stdout)")
	faultsFlag := fs.String("faults", "", `fault-injection profile for the clip route, e.g. "p=0.05" or "error=0.1,timeout=0.05,latency=20ms" ("" or "off" disables)`)
	maxInFlight := fs.Int("maxinflight", 0, "shed requests with 429 once this many are in flight (0 = unbounded)")
	memLimit := fs.Uint64("memlimit", 0, "bypass cache admission while process heap exceeds this many bytes (0 = off)")
	nodeID := fs.String("node-id", "", "this node's cluster ring ID; joins the cooperative tier (\"\" = standalone)")
	peersFlag := fs.String("peers", "", `comma-separated ring peers as id=url pairs, e.g. "n2=http://10.0.0.2:8377,n3=http://10.0.0.3:8377"`)
	replicas := fs.Int("replicas", cluster.DefaultReplicas, "ring owners consulted per clip")
	hedge := fs.Duration("hedge", cluster.DefaultHedgeDelay, "delay before a peer read is hedged to the next replica")
	digestInterval := fs.Duration("digest-interval", cluster.DefaultDigestInterval, "period of the peer residency-digest refresh loop")
	peerAlloc := fs.Int64("peer-alloc", 100_000_000, "node-to-node link bandwidth in bits/second for peer-served misses")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	profile, err := fault.ParseProfile(*faultsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cacheserver: %v\n", err)
		os.Exit(2)
	}
	peers, err := parsePeers(*peersFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cacheserver: %v\n", err)
		os.Exit(2)
	}
	if *nodeID == "" && len(peers) > 0 {
		fmt.Fprintln(os.Stderr, "cacheserver: -peers requires -node-id")
		os.Exit(2)
	}

	level := slog.LevelInfo
	if *trace {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	var reqlog io.Writer
	if *reqlogPath == "-" {
		reqlog = os.Stdout
	} else if *reqlogPath != "" {
		f, err := os.OpenFile(*reqlogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cacheserver: opening reqlog: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		reqlog = f
	}

	srv, err := newServer(config{
		policy:         *policy,
		ratio:          *ratio,
		alloc:          media.BitsPerSecond(*alloc),
		admission:      *admission,
		seed:           *seed,
		shards:         *shards,
		segmentSize:    media.Bytes(*segment),
		prefixSegments: *prefix,
		ttl:            vtime.Duration(*ttl),
		logger:         logger,
		trace:          *trace,
		pprof:          *pprofFlag,
		reqlog:         reqlog,
		faults:         profile,
		maxInFlight:    *maxInFlight,
		memLimit:       *memLimit,
		cluster: clusterConfig{
			nodeID:         *nodeID,
			peers:          peers,
			replicas:       *replicas,
			hedgeDelay:     *hedge,
			digestInterval: *digestInterval,
			peerAlloc:      media.BitsPerSecond(*peerAlloc),
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cacheserver: %v\n", err)
		os.Exit(1)
	}
	if srv.cluster != nil {
		stop := srv.cluster.StartDigestLoop()
		defer stop()
	}
	logger.Info("cacheserver listening",
		slog.String("policy", srv.pool.PolicyName()),
		slog.String("addr", *addr),
		slog.String("cache", srv.pool.Capacity().String()),
		slog.Int("shards", srv.pool.NumShards()),
		slog.String("link", srv.alloc.String()),
		slog.Bool("pprof", *pprofFlag),
	)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		logger.Error("cacheserver exited", slog.Any("err", err))
		os.Exit(1)
	}
}

// pmfFor computes the true request frequencies the off-line Simple policy
// needs; on-line policies ignore it.
func pmfFor(repo *media.Repository) ([]float64, error) {
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		return nil, err
	}
	return dist.PMF(), nil
}

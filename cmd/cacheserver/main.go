// Command cacheserver runs a mobile-device clip cache behind an HTTP API —
// a minimal service harness showing the library embedded in a long-running
// program rather than a batch simulation.
//
// Endpoints (v1):
//
//	GET  /v1/clips/{id}  service a reference to clip id; returns the outcome,
//	                     whether it hit, and the startup latency the device
//	                     would observe at the configured link bandwidth
//	GET  /v1/stats       accumulated cache statistics and engine counters
//	GET  /v1/resident    currently resident clip ids and byte usage
//	POST /v1/reset       clear the cache, statistics and policy state
//	GET  /v1/snapshot    gob-encoded persistent cache state
//	POST /v1/restore     restore a previously captured snapshot
//	GET  /v1/policies    policy specs the registry can build
//
// Errors are returned as a uniform JSON envelope {"error": "..."}. The
// unversioned paths (/clips/{id}, /stats, ...) are deprecated aliases for
// pre-v1 clients; they serve the same responses with a Deprecation header.
//
// Usage:
//
//	cacheserver -addr :8377 -policy dynsimple:2 -ratio 0.125 -alloc 4000000
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"mediacache/internal/media"
	"mediacache/internal/sim"
	"mediacache/internal/zipf"
)

func main() {
	fs := flag.NewFlagSet("cacheserver", flag.ExitOnError)
	addr := fs.String("addr", ":8377", "listen address")
	policy := fs.String("policy", "dynsimple:2", "replacement policy spec")
	ratio := fs.Float64("ratio", 0.125, "cache size as a fraction of the repository")
	alloc := fs.Int64("alloc", 4_000_000, "per-stream network bandwidth in bits/second")
	admission := fs.Float64("admission", 0.5, "admission-control overhead in seconds")
	seed := fs.Uint64("seed", sim.DefaultSeed, "policy tie-break seed")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}

	srv, err := newServer(*policy, *ratio, media.BitsPerSecond(*alloc), *admission, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cacheserver: %v\n", err)
		os.Exit(1)
	}
	log.Printf("cacheserver: %s on %s (cache %v, link %v)",
		srv.cache.Policy().Name(), *addr, srv.cache.Capacity(), srv.alloc)
	log.Fatal(http.ListenAndServe(*addr, srv))
}

// pmfFor computes the true request frequencies the off-line Simple policy
// needs; on-line policies ignore it.
func pmfFor(repo *media.Repository) ([]float64, error) {
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		return nil, err
	}
	return dist.PMF(), nil
}

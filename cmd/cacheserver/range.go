package main

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mediacache/internal/api"
	"mediacache/internal/media"
	"mediacache/internal/netsim"
)

// byteRange is a parsed, clamped Range request: [start, start+length) within
// a clip of known size.
type byteRange struct {
	start  media.Bytes
	length media.Bytes
}

// errUnsatisfiable marks a syntactically valid Range no byte of which lies
// inside the clip — the 416 case, answered with Content-Range: bytes */size.
var errUnsatisfiable = fmt.Errorf("range not satisfiable")

// errMultiRange marks a multi-range request. The simulator serves outcome
// JSON, not an actual multipart/byteranges body, so multiple ranges are
// rejected with 416 rather than silently collapsed into one.
var errMultiRange = fmt.Errorf("multi-range requests are not supported")

// parseRange interprets an HTTP Range header against a clip of the given
// size. Returns (nil, nil) when the header is absent, names units other than
// bytes, or is malformed — RFC 9110 lets a server ignore such headers and
// serve 200. A valid single range is clamped to the clip and returned; a
// satisfiable multi-range or an unsatisfiable range returns an error for the
// 416 path.
func parseRange(header string, size media.Bytes) (*byteRange, error) {
	if header == "" {
		return nil, nil
	}
	spec, ok := strings.CutPrefix(header, "bytes=")
	if !ok {
		return nil, nil // unknown unit: ignore
	}
	if strings.Contains(spec, ",") {
		return nil, errMultiRange
	}
	first, last, ok := strings.Cut(strings.TrimSpace(spec), "-")
	if !ok {
		return nil, nil // malformed: ignore
	}
	if first == "" {
		// Suffix form "-n": the final n bytes.
		n, err := strconv.ParseInt(last, 10, 64)
		if err != nil || n < 0 {
			return nil, nil // malformed: ignore
		}
		if n == 0 {
			return nil, errUnsatisfiable
		}
		start := size - media.Bytes(n)
		if start < 0 {
			start = 0
		}
		return &byteRange{start: start, length: size - start}, nil
	}
	start, err := strconv.ParseInt(first, 10, 64)
	if err != nil || start < 0 {
		return nil, nil // malformed: ignore
	}
	if media.Bytes(start) >= size {
		return nil, errUnsatisfiable
	}
	if last == "" {
		// Open form "a-": from a to the end.
		return &byteRange{start: media.Bytes(start), length: size - media.Bytes(start)}, nil
	}
	end, err := strconv.ParseInt(last, 10, 64)
	if err != nil || end < start {
		return nil, nil // malformed: ignore
	}
	if media.Bytes(end) >= size {
		end = int64(size) - 1
	}
	return &byteRange{start: media.Bytes(start), length: media.Bytes(end-start) + 1}, nil
}

// contentRange formats the Content-Range header of a 206 response.
func contentRange(rng byteRange, size media.Bytes) string {
	return fmt.Sprintf("bytes %d-%d/%d", rng.start, rng.start+rng.length-1, size)
}

// setResidentBytesHeader reports how many of the clip's bytes are currently
// cached — the observable signal that a prefix-resident clip served its
// first bytes from cache.
func (s *server) setResidentBytesHeader(w http.ResponseWriter, id media.ClipID) {
	w.Header().Set("X-Cache-Resident-Bytes",
		strconv.FormatInt(int64(s.pool.ResidentBytes(id)), 10))
}

// segmentInfo builds the per-clip segment summary attached to segmented
// responses; nil on unsegmented pools.
func (s *server) segmentInfo(clip media.Clip) *api.SegmentInfo {
	segSize := s.pool.SegmentSize()
	if segSize == 0 {
		return nil
	}
	total := int((clip.Size + segSize - 1) / segSize)
	if total == 0 {
		total = 1
	}
	resident := 0
	for _, ext := range s.pool.ResidentExtentsOf(clip.ID) {
		resident += int((ext.Length + segSize - 1) / segSize)
	}
	return &api.SegmentInfo{
		SizeBytes: int64(segSize),
		Total:     total,
		Resident:  resident,
	}
}

// handleHeadClip services HEAD /v1/clips/{id}: the clip's size and current
// residency without touching the cache (no request is recorded, no clock
// tick). Clients use it to size Range requests and probe prefix residency.
func (s *server) handleHeadClip(w http.ResponseWriter, r *http.Request) {
	raw := r.PathValue("id")
	id, err := strconv.Atoi(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad clip id %q", raw)
		return
	}
	clip, ok := s.pool.Repository().Lookup(media.ClipID(id))
	if !ok {
		writeError(w, http.StatusNotFound, "clip %d not in repository", id)
		return
	}
	w.Header().Set("Accept-Ranges", "bytes")
	w.Header().Set("Content-Length", strconv.FormatInt(int64(clip.Size), 10))
	s.setResidentBytesHeader(w, clip.ID)
	w.WriteHeader(http.StatusOK)
}

// serveClipRange services a GET /v1/clips/{id} carrying a Range header that
// parsed to rng: the range's segments are serviced through the pool (missing
// ones fetch with per-segment coalescing) and the outcome is reported with
// 206 + Content-Range — or 200 when the range spans the whole clip and every
// byte was already resident, the fully-resident fast path.
func (s *server) serveClipRange(w http.ResponseWriter, r *http.Request, clip media.Clip, rng byteRange, start time.Time) {
	// Prefix residency is judged before the request mutates it: a range
	// whose first byte is already cached starts streaming immediately, so
	// the modeled startup latency is zero even when the tail misses.
	startResident := false
	for _, ext := range s.pool.ResidentExtentsOf(clip.ID) {
		if ext.Start <= rng.start && rng.start < ext.Start+ext.Length {
			startResident = true
			break
		}
	}
	res, err := s.pool.RequestRange(clip.ID, rng.start, rng.length)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	resp := api.Clip{
		Clip:      clip.ID,
		Kind:      clip.Kind.String(),
		SizeBytes: int64(clip.Size),
		Outcome:   res.Outcome.String(),
		Hit:       res.Outcome.IsHit(),
		Range: &api.RangeInfo{
			StartBytes:   int64(res.Start),
			LengthBytes:  int64(res.Length),
			BytesHit:     int64(res.BytesHit),
			BytesFetched: int64(res.BytesFetched),
			BytesFailed:  int64(res.BytesFailed),
		},
	}
	if !res.Outcome.IsHit() && !startResident {
		lat, lerr := netsim.StartupLatency(clip, s.alloc, s.admission)
		if lerr != nil {
			writeError(w, http.StatusInternalServerError, "%v", lerr)
			return
		}
		resp.LatencySeconds = float64(lat)
	}
	s.decorateSegmented(&resp, clip)
	s.decorateTTL(&resp, clip.ID)
	w.Header().Set("Accept-Ranges", "bytes")
	s.setResidentBytesHeader(w, clip.ID)
	// The serviced (clamped) range is what the log records, so traceql's
	// range-bias fits see the bytes the cache actually handled.
	served := byteRange{start: res.Start, length: res.Length}
	if rng.start == 0 && rng.length == clip.Size && res.Outcome.IsHit() {
		// Fully resident whole-clip range: plain 200, like an unranged GET.
		s.logClip(r, clip, &served, resp.Outcome, resp.Hit, http.StatusOK, resp.LatencySeconds, "", start)
		writeJSON(w, resp)
		return
	}
	s.logClip(r, clip, &served, resp.Outcome, resp.Hit, http.StatusPartialContent, resp.LatencySeconds, "", start)
	w.Header().Set("Content-Range", contentRange(rng, clip.Size))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusPartialContent)
	writeJSONBody(w, resp)
}

// decorateSegmented attaches the segment-residency fields to a clip
// response on segmented pools; a no-op otherwise so unsegmented responses
// stay byte-identical to pre-segment servers.
func (s *server) decorateSegmented(resp *api.Clip, clip media.Clip) {
	info := s.segmentInfo(clip)
	if info == nil {
		return
	}
	resp.Segments = info
	resp.BytesResident = int64(s.pool.ResidentBytes(clip.ID))
	resp.PrefixSegments = s.pool.PrefixSegments()
}

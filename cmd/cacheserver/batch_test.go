package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"mediacache/internal/api"
	"mediacache/internal/media"
)

// postBatch submits a batch body and decodes the response envelope.
func postBatch(t *testing.T, url string, req api.BatchRequest) (*http.Response, api.BatchResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out api.BatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

// TestBatchMatchesSingleRoute proves the batch route's per-item results are
// exactly what the same sequence of single-clip GETs produces on a twin
// server: same statuses, outcomes, latencies and final stats.
func TestBatchMatchesSingleRoute(t *testing.T) {
	_, batchTS := newTestServer(t)
	_, singleTS := newTestServer(t)

	trace := []media.ClipID{1, 2, 3, 1, 2, 4, 1, 5, 2, 3, 1, 6, 7, 1, 2}
	const batchLen = 5
	for off := 0; off < len(trace); off += batchLen {
		chunk := trace[off : off+batchLen]
		req := api.BatchRequest{}
		for _, id := range chunk {
			req.Items = append(req.Items, api.BatchItem{Clip: id})
		}
		resp, out := postBatch(t, batchTS.URL, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch status %d", resp.StatusCode)
		}
		if len(out.Items) != len(chunk) {
			t.Fatalf("batch returned %d items, want %d", len(out.Items), len(chunk))
		}
		for k, id := range chunk {
			var single api.Clip
			sresp := getJSON(t, fmt.Sprintf("%s/v1/clips/%d", singleTS.URL, id), &single)
			if sresp.StatusCode != http.StatusOK {
				t.Fatalf("single status %d", sresp.StatusCode)
			}
			it := out.Items[k]
			if it.Clip != id || it.Status != http.StatusOK {
				t.Fatalf("item %d: clip %d status %d", off+k, it.Clip, it.Status)
			}
			if it.Outcome != single.Outcome || it.Hit != single.Hit {
				t.Fatalf("item %d (clip %d): batch %s/%v, single %s/%v",
					off+k, id, it.Outcome, it.Hit, single.Outcome, single.Hit)
			}
			if it.SizeBytes != single.SizeBytes || it.LatencySeconds != single.LatencySeconds {
				t.Fatalf("item %d (clip %d): batch size=%d lat=%v, single size=%d lat=%v",
					off+k, id, it.SizeBytes, it.LatencySeconds, single.SizeBytes, single.LatencySeconds)
			}
		}
	}

	var bst, sst api.Stats
	getJSON(t, batchTS.URL+"/v1/stats", &bst)
	getJSON(t, singleTS.URL+"/v1/stats", &sst)
	if bst != sst {
		t.Fatalf("stats diverged:\nbatch  %+v\nsingle %+v", bst, sst)
	}
}

// TestBatchRangedItems drives partial-content items through the batch route
// on a segmented server and checks the range accounting round-trips.
func TestBatchRangedItems(t *testing.T) {
	cfg := testConfig()
	cfg.segmentSize = 256 * media.MB
	cfg.prefixSegments = 1
	_, ts := newTestServerConfig(t, cfg)

	start, length := int64(0), int64(-1)
	mid := int64(512 * media.MB)
	req := api.BatchRequest{Items: []api.BatchItem{
		{Clip: 1, StartBytes: &start, LengthBytes: &length}, // whole clip, ranged form
		{Clip: 1, StartBytes: &mid},                         // open tail
		{Clip: 2},                                           // whole-clip form
	}}
	resp, out := postBatch(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for k, it := range out.Items[:2] {
		if it.Status != http.StatusOK && it.Status != http.StatusPartialContent {
			t.Fatalf("item %d: status %d (%s)", k, it.Status, it.Error)
		}
		if it.Range == nil {
			t.Fatalf("item %d: ranged item carries no range info", k)
		}
		if got := it.Range.BytesHit + it.Range.BytesFetched + it.Range.BytesFailed; got != it.Range.LengthBytes {
			t.Fatalf("item %d: range bytes %d do not cover length %d", k, got, it.Range.LengthBytes)
		}
	}
	if out.Items[2].Range != nil {
		t.Fatal("whole-clip item carries range info")
	}

	// Out-of-clip start resolves per item, not per batch.
	huge := int64(1 << 60)
	_, out = postBatch(t, ts.URL, api.BatchRequest{Items: []api.BatchItem{
		{Clip: 1, StartBytes: &huge},
		{Clip: 1},
	}})
	if out.Items[0].Status != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("out-of-clip start: status %d", out.Items[0].Status)
	}
	if out.Items[1].Status != http.StatusOK {
		t.Fatalf("sibling item: status %d", out.Items[1].Status)
	}
}

// TestBatchItemErrors pins the per-item and whole-batch error envelopes.
func TestBatchItemErrors(t *testing.T) {
	_, ts := newTestServer(t)

	// Unknown clips 404 per item; the batch itself succeeds.
	resp, out := postBatch(t, ts.URL, api.BatchRequest{Items: []api.BatchItem{
		{Clip: 999999}, {Clip: 1},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Items[0].Status != http.StatusNotFound || out.Items[0].Error == "" {
		t.Fatalf("unknown clip: %+v", out.Items[0])
	}
	if out.Items[1].Status != http.StatusOK {
		t.Fatalf("known clip alongside unknown: %+v", out.Items[1])
	}
	if out.Shed {
		t.Fatal("unloaded server reported shed")
	}

	// Empty and oversized batches are whole-request errors.
	if resp, _ := postBatch(t, ts.URL, api.BatchRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", resp.StatusCode)
	}
	big := api.BatchRequest{Items: make([]api.BatchItem, maxBatchItems+1)}
	for i := range big.Items {
		big.Items[i].Clip = 1
	}
	if resp, _ := postBatch(t, ts.URL, big); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d", resp.StatusCode)
	}
	malformed, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	malformed.Body.Close()
	if malformed.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", malformed.StatusCode)
	}
}

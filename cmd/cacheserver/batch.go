package main

// batch.go services POST /v1/batch: an ordered list of clip references
// submitted as one body and serviced through the pool's RequestBatch, which
// groups items by owning shard and amortizes engine-lock acquisitions
// across the group. Per-item semantics mirror the single-clip route — the
// same statuses, outcomes and modeled latencies an equivalent sequence of
// GET /v1/clips/{id} calls would have produced — so clients can switch
// between the forms freely.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"mediacache/internal/api"
	"mediacache/internal/fault"
	"mediacache/internal/media"
	"mediacache/internal/netsim"
	"mediacache/internal/shard"
)

const (
	// maxBatchItems bounds one batch. Bigger batches amortize no better and
	// hold their per-shard groups pinned longer; clients should split.
	maxBatchItems = 1024
	// maxBatchBody bounds the request body (a full 1024-item batch with
	// ranges is under 64 KiB).
	maxBatchBody = 1 << 20
)

// handleBatch services POST /v1/batch.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	batchStart := time.Now()
	var req api.BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad batch body: %v", err)
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Items) > maxBatchItems {
		writeError(w, http.StatusBadRequest,
			"batch of %d items exceeds the %d-item bound", len(req.Items), maxBatchItems)
		return
	}

	resp := api.BatchResponse{Items: make([]api.BatchItemResult, len(req.Items))}
	// Pre-screen every item: unknown clips and injected faults resolve
	// without touching the cache (a faulted transfer fails before the clip
	// materializes, exactly as on the single-clip route). Survivors become
	// pool batch items; back maps them to their response slots.
	items := make([]shard.BatchItem, 0, len(req.Items))
	back := make([]int, 0, len(req.Items))
	clips := make([]media.Clip, 0, len(req.Items))
	var stall time.Duration
	for i := range req.Items {
		it := &req.Items[i]
		res := &resp.Items[i]
		res.Clip = it.Clip
		clip, ok := s.pool.Repository().Lookup(it.Clip)
		if !ok {
			res.Status = http.StatusNotFound
			res.Error = fmt.Sprintf("clip %d not in repository", it.Clip)
			continue
		}
		if s.chaos != nil {
			// Item transfers proceed concurrently, so the batch stalls for
			// the slowest injected delay rather than their sum.
			d, failed := s.chaos.drawItem(res)
			if d > stall {
				stall = d
			}
			if failed {
				continue
			}
		}
		bi := shard.BatchItem{ID: it.Clip}
		if it.StartBytes != nil || it.LengthBytes != nil {
			start := int64(0)
			if it.StartBytes != nil {
				start = *it.StartBytes
			}
			length := int64(-1)
			if it.LengthBytes != nil {
				length = *it.LengthBytes
			}
			if start < 0 || media.Bytes(start) >= clip.Size {
				res.Status = http.StatusRequestedRangeNotSatisfiable
				res.Error = fmt.Sprintf("start %d outside clip of %d bytes", start, clip.Size)
				continue
			}
			bi.Ranged, bi.Start, bi.Length = true, media.Bytes(start), media.Bytes(length)
		}
		items = append(items, bi)
		back = append(back, i)
		clips = append(clips, clip)
	}
	if stall > 0 {
		time.Sleep(stall)
	}

	// Ranged items judge prefix residency before the batch mutates it, as
	// the single-clip route does: a range whose first byte is cached starts
	// streaming immediately, so its modeled startup latency is zero.
	startResident := make([]bool, len(items))
	for k := range items {
		if !items[k].Ranged {
			continue
		}
		for _, ext := range s.pool.ResidentExtentsOf(items[k].ID) {
			if ext.Start <= items[k].Start && items[k].Start < ext.Start+ext.Length {
				startResident[k] = true
				break
			}
		}
	}

	for k, br := range s.pool.RequestBatch(items) {
		res := &resp.Items[back[k]]
		clip := clips[k]
		if br.Err != nil {
			res.Status = http.StatusInternalServerError
			res.Error = br.Err.Error()
			continue
		}
		res.Status = http.StatusOK
		res.Outcome = br.Outcome.String()
		res.Hit = br.Outcome.IsHit()
		res.SizeBytes = int64(clip.Size)
		if items[k].Ranged {
			res.Range = &api.RangeInfo{
				StartBytes:   int64(br.Range.Start),
				LengthBytes:  int64(br.Range.Length),
				BytesHit:     int64(br.Range.BytesHit),
				BytesFetched: int64(br.Range.BytesFetched),
				BytesFailed:  int64(br.Range.BytesFailed),
			}
			if !(br.Range.Start == 0 && br.Range.Length == clip.Size && res.Hit) {
				res.Status = http.StatusPartialContent
			}
		}
		if !res.Hit && !(items[k].Ranged && startResident[k]) {
			lat, err := netsim.StartupLatency(clip, s.alloc, s.admission)
			if err != nil {
				res.Status = http.StatusInternalServerError
				res.Error = err.Error()
				continue
			}
			res.LatencySeconds = float64(lat)
		}
		// Log the item as its single-request form would have been; item
		// transfers proceed concurrently, so each is charged the elapsed
		// batch time so far.
		var served *byteRange
		if items[k].Ranged {
			served = &byteRange{start: br.Range.Start, length: br.Range.Length}
		}
		s.logClip(r, clip, served, res.Outcome, res.Hit, res.Status, res.LatencySeconds, "", batchStart)
	}
	resp.Shed = s.shed.saturated() || s.guard.degradedNow()
	writeJSON(w, resp)
}

// drawItem draws the next scheduled fault for one batch item. A failed draw
// resolves the item with the status its single-request form would have
// received and reports failed=true; the item never reaches the cache. The
// returned delay is the item's injected stall — the scheduled latency, plus
// the profile's hold for a timeout fault (a stalled transfer runs to its
// deadline), exactly what the single-clip route would have slept.
func (c *chaos) drawItem(res *api.BatchItemResult) (delay time.Duration, failed bool) {
	f := c.draw()
	delay = f.Latency
	if !f.Failed() {
		return delay, false
	}
	c.injected[f.Kind].Inc()
	switch f.Kind {
	case fault.Error:
		res.Status = http.StatusBadGateway
		res.Error = "injected link error fetching clip"
	case fault.Timeout:
		delay += c.inj.Profile().HoldOrDefault()
		res.Status = http.StatusGatewayTimeout
		res.Error = "injected link stall fetching clip"
	case fault.Partial:
		res.Status = http.StatusBadGateway
		res.Error = fmt.Sprintf("injected partial delivery (%.0f%% of clip) fetching clip", f.Fraction*100)
	}
	return delay, true
}

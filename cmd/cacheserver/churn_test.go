package main

// churn_test.go (ISSUE 8): the catalog-churn surface of the HTTP API —
// DELETE /v1/clips/{id} semantics, TTL surfacing on /v1/stats and the clip
// detail, pre-churn wire compatibility when TTL is off, and a race-detector
// chaos drive mixing concurrent readers with invalidations and expiry
// sweeps (rides in `make racecheck`, which covers ./cmd/cacheserver).

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"testing"

	"mediacache/internal/api"
	"mediacache/internal/vtime"
)

// doDelete issues DELETE url and returns the response (body closed).
func doDelete(t *testing.T, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestDeleteClip(t *testing.T) {
	_, ts := newTestServer(t)

	// Cache clip 1, then invalidate it: 204, freed bytes in the header.
	var clip api.Clip
	getJSON(t, ts.URL+"/v1/clips/1", &clip)
	resp := doDelete(t, ts.URL+"/v1/clips/1")
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE resident clip: status %d, want 204", resp.StatusCode)
	}
	freed, err := strconv.ParseInt(resp.Header.Get("X-Cache-Invalidated-Bytes"), 10, 64)
	if err != nil || freed != clip.SizeBytes {
		t.Fatalf("X-Cache-Invalidated-Bytes = %q (err %v), want %d",
			resp.Header.Get("X-Cache-Invalidated-Bytes"), err, clip.SizeBytes)
	}

	// Idempotent: deleting again is still 204, now freeing nothing.
	resp = doDelete(t, ts.URL+"/v1/clips/1")
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("repeat DELETE: status %d, want 204", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache-Invalidated-Bytes"); got != "0" {
		t.Fatalf("repeat DELETE freed %q bytes, want 0", got)
	}

	// The next reference misses again — the invalidation really dropped it.
	getJSON(t, ts.URL+"/v1/clips/1", &clip)
	if clip.Hit {
		t.Fatal("clip hit immediately after invalidation")
	}

	// Errors: malformed id 400, id outside the repository 404.
	if resp := doDelete(t, ts.URL+"/v1/clips/bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("DELETE bad id: status %d, want 400", resp.StatusCode)
	}
	if resp := doDelete(t, ts.URL+"/v1/clips/99999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown clip: status %d, want 404", resp.StatusCode)
	}

	// Exactly one invalidation counted: the idempotent repeat and the error
	// paths must not inflate the counter, and invalidations are not requests.
	var stats api.Stats
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Invalidated != 1 || stats.BytesInvalidated != clip.SizeBytes {
		t.Fatalf("stats report %d invalidations / %d bytes, want 1 / %d",
			stats.Invalidated, stats.BytesInvalidated, clip.SizeBytes)
	}
	if stats.Requests != 2 {
		t.Fatalf("stats report %d requests, want 2 (invalidations are not requests)", stats.Requests)
	}
}

func TestTTLSurfacedOnStatsAndClip(t *testing.T) {
	cfg := testConfig()
	cfg.ttl = 5000
	_, ts := newTestServerConfig(t, cfg)

	var clip api.Clip
	getJSON(t, ts.URL+"/v1/clips/3", &clip)
	// First reference at tick 1, so the cached copy expires at 1+ttl.
	if clip.ExpiresAtTick != 5001 {
		t.Fatalf("expiresAtTick = %d, want 5001", clip.ExpiresAtTick)
	}
	var stats api.Stats
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.TTLTicks != 5000 {
		t.Fatalf("ttlTicks = %d, want 5000", stats.TTLTicks)
	}
}

// TestPreChurnWireShape: a TTL-off server that never saw a DELETE answers
// /v1/stats and the clip detail without any of the churn fields — the
// live-server half of the pre-churn compatibility promise (the marshalling
// half is pinned by goldens in internal/api).
func TestPreChurnWireShape(t *testing.T) {
	_, ts := newTestServer(t)
	getJSON(t, ts.URL+"/v1/clips/2", nil)

	for path, fields := range map[string][]string{
		"/v1/stats":   {"ttlTicks", "invalidated", "expired", "bytesInvalidated"},
		"/v1/clips/2": {"expiresAtTick"},
	} {
		var doc map[string]any
		getJSON(t, ts.URL+path, &doc)
		for _, f := range fields {
			if _, ok := doc[f]; ok {
				t.Errorf("%s: churn field %q present on a TTL-off server", path, f)
			}
		}
	}
}

// TestExpiryVisibleOverHTTP drives enough requests through a short-TTL
// server that clips expire, then checks the sweep surfaced in /v1/stats.
func TestExpiryVisibleOverHTTP(t *testing.T) {
	cfg := testConfig()
	cfg.ttl = 20
	_, ts := newTestServerConfig(t, cfg)

	for i := 0; i < 300; i++ {
		getJSON(t, fmt.Sprintf("%s/v1/clips/%d", ts.URL, i%7+1), nil)
	}
	var stats api.Stats
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Expired == 0 {
		t.Fatalf("no expiries after 300 requests at ttl 20: %+v", stats)
	}
	if stats.Expired > stats.Invalidated {
		t.Fatalf("expired %d exceeds invalidated %d", stats.Expired, stats.Invalidated)
	}
}

// TestConcurrentDeleteChaos is the race-detector drive of ISSUE 8: several
// goroutines hammer GETs while others issue DELETEs for the same ids on a
// sharded, short-TTL server (so lazy expiry and the amortized sweep fire
// under load, concurrently with stats snapshots). Afterwards the counting
// and byte identities must hold on the drained statistics.
func TestConcurrentDeleteChaos(t *testing.T) {
	cfg := testConfig()
	cfg.shards = 4
	cfg.ttl = vtime.Duration(50)
	_, ts := newTestServerConfig(t, cfg)

	const (
		readers  = 4
		deleters = 2
		rounds   = 150
	)
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := (i*7+w*13)%25 + 1
				resp, err := http.Get(fmt.Sprintf("%s/v1/clips/%d", ts.URL, id))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET clip %d: status %d", id, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	for w := 0; w < deleters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := (i*5+w*17)%25 + 1
				req, err := http.NewRequest(http.MethodDelete,
					fmt.Sprintf("%s/v1/clips/%d", ts.URL, id), nil)
				if err != nil {
					t.Error(err)
					return
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusNoContent {
					t.Errorf("DELETE clip %d: status %d", id, resp.StatusCode)
					return
				}
				if i%40 == 0 {
					resp, err := http.Get(ts.URL + "/v1/stats")
					if err != nil {
						t.Error(err)
						return
					}
					json.NewDecoder(resp.Body).Decode(&api.Stats{})
					resp.Body.Close()
				}
			}
		}(w)
	}
	wg.Wait()

	var stats api.Stats
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if want := uint64(readers * rounds); stats.Requests != want {
		t.Fatalf("stats report %d requests, drove %d (DELETEs must not count)", stats.Requests, want)
	}
	if stats.Hits+stats.BypassedMisses+stats.DegradedMisses > stats.Requests {
		t.Fatalf("counting identity broken under churn chaos: %+v", stats)
	}
	if stats.Invalidated == 0 {
		t.Fatalf("chaos drive produced no invalidations: %+v", stats)
	}
	if stats.Expired > stats.Invalidated {
		t.Fatalf("expired %d exceeds invalidated %d", stats.Expired, stats.Invalidated)
	}
	if stats.UsedBytes < 0 || stats.UsedBytes > stats.CapacityBytes {
		t.Fatalf("used bytes %d outside [0, %d]", stats.UsedBytes, stats.CapacityBytes)
	}
}

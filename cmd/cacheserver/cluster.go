// cluster.go — the networked cooperative tier (ISSUE 9). With -node-id
// set, this server joins a consistent-hash ring of cacheservers: on a
// local miss the clip's ring owners are consulted over hedged peer reads
// before the origin fetch is booked at origin bandwidth, and three routes
// are mounted for the sibling nodes:
//
//	GET /v1/cluster            ring membership, per-peer breaker and digest
//	                           state, cooperative counters
//	GET /v1/cluster/digest     this node's residency digest (fully resident
//	                           clip IDs) for peers' local probe decisions
//	GET /v1/cluster/clips/{id} peer-serve: 200 iff the clip is fully
//	                           resident here; never touches this node's
//	                           request statistics
//
// Peer-serve deliberately does NOT run the clip through this node's cache
// engine: the serving node's policy and statistics see only its own
// clients, mirroring internal/coop's device model where a peer read costs
// the holder nothing. The requesting node always runs its own pool.Request
// — its counting and byte identities hold whether bytes arrive from a peer
// or the origin; a peer win only changes which link the startup latency is
// charged to.
package main

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"mediacache/internal/api"
	"mediacache/internal/cacheclient"
	"mediacache/internal/cluster"
	"mediacache/internal/media"
	"mediacache/internal/netsim"
	"mediacache/internal/obs"
)

// clusterConfig is the -node-id/-peers slice of the server configuration.
// A zero nodeID leaves the server standalone: no ring, no cluster routes,
// wire responses byte-identical to pre-cluster servers.
type clusterConfig struct {
	nodeID         string
	peers          []cluster.Peer
	replicas       int
	hedgeDelay     time.Duration
	digestInterval time.Duration
	// peerAlloc is the node-to-node link bandwidth: peer-served misses are
	// charged startup latency at this rate instead of the origin's alloc.
	// 0 falls back to the origin bandwidth (peer reads save nothing).
	peerAlloc media.BitsPerSecond
	// client templates the per-peer cacheclient configuration (zero value =
	// the cluster package defaults). The chaos tests use it to route peer
	// traffic through fault-injecting transports.
	client cacheclient.Config
}

// parsePeers parses the -peers flag: comma-separated id=url pairs, e.g.
// "n2=http://10.0.0.2:8377,n3=http://10.0.0.3:8377".
func parsePeers(spec string) ([]cluster.Peer, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var peers []cluster.Peer
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad peer %q: want id=url", part)
		}
		peers = append(peers, cluster.Peer{ID: id, URL: url})
	}
	return peers, nil
}

// initCluster builds the cooperative tier and mounts its routes. Called
// from newServer only when cfg.nodeID is set.
func (s *server) initCluster(cfg clusterConfig) error {
	cl, err := cluster.New(cluster.Config{
		Self:           cfg.nodeID,
		Peers:          cfg.peers,
		Replicas:       cfg.replicas,
		HedgeDelay:     cfg.hedgeDelay,
		DigestInterval: cfg.digestInterval,
		Client:         cfg.client,
	})
	if err != nil {
		return err
	}
	s.cluster = cl
	s.peerAlloc = cfg.peerAlloc
	if s.peerAlloc <= 0 {
		s.peerAlloc = s.alloc
	}
	obs.RegisterClusterMetrics(s.reg, cl)
	// The cluster routes are peer-to-peer infrastructure: instrumented like
	// every route, but never chaos-wrapped — -faults models the flaky
	// device-to-origin link, and a node's injected faults must not cascade
	// into its siblings' probe paths.
	for pattern, h := range map[string]http.HandlerFunc{
		"GET /v1/cluster":            s.handleClusterStatus,
		"GET /v1/cluster/digest":     s.handleClusterDigest,
		"GET /v1/cluster/clips/{id}": s.handleClusterClip,
	} {
		s.mux.Handle(pattern, s.instrument(pattern, h))
	}
	return nil
}

// handleClusterStatus services GET /v1/cluster: ring membership with
// per-peer breaker and digest state, plus the cooperative counters.
func (s *server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.cluster.Status())
}

// handleClusterDigest services GET /v1/cluster/digest: the IDs of every
// fully resident clip, from one consistent pool snapshot. Partially
// resident clips are counted but not listed — a peer probing for a clip
// this node holds half of would receive a 404, so advertising partials
// would only buy wasted round trips.
func (s *server) handleClusterDigest(w http.ResponseWriter, r *http.Request) {
	all, used := s.pool.Residency()
	d := api.ClusterDigest{
		Node:             s.cluster.Self(),
		Seq:              s.digestSeq.Add(1),
		UsedBytes:        int64(used),
		SegmentSizeBytes: int64(s.pool.SegmentSize()),
	}
	for _, c := range all {
		if c.Bytes == c.Clip.Size {
			d.Clips = append(d.Clips, c.Clip.ID)
		} else {
			d.PartialClips++
		}
	}
	writeJSON(w, d)
}

// handleClusterClip services GET /v1/cluster/clips/{id}, the peer-serve
// read: 200 with the clip's size iff the clip is fully resident on this
// node, 404 otherwise. It never calls pool.Request — peer traffic must not
// perturb this node's request statistics, policy state, or identities.
func (s *server) handleClusterClip(w http.ResponseWriter, r *http.Request) {
	raw := r.PathValue("id")
	id, err := strconv.Atoi(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad clip id %q", raw)
		return
	}
	clip, ok := s.pool.Repository().Lookup(media.ClipID(id))
	if !ok {
		writeError(w, http.StatusNotFound, "clip %d not in repository", id)
		return
	}
	if s.pool.ResidentBytes(clip.ID) < clip.Size {
		writeError(w, http.StatusNotFound, "clip %d not fully resident on %s", id, s.cluster.Self())
		return
	}
	s.cluster.NotePeerServed(int64(clip.Size))
	writeJSON(w, api.ClusterClip{
		Clip:      clip.ID,
		Node:      s.cluster.Self(),
		SizeBytes: int64(clip.Size),
	})
}

// consultPeers asks the clip's ring owners for a locally missed clip.
// Returns the serving peer's ID when one answered. Called just before the
// local pool.Request books the miss, so a peer win downgrades the fetch
// from origin bandwidth to peer-link bandwidth without touching any
// engine accounting.
func (s *server) consultPeers(r *http.Request, clip media.Clip) (string, bool) {
	if s.cluster == nil {
		return "", false
	}
	if s.pool.ResidentBytes(clip.ID) == clip.Size {
		// Locally fully resident: the request is a local hit; peers have
		// nothing to add.
		return "", false
	}
	out, ok := s.cluster.Lookup(r.Context(), clip.ID)
	if !ok {
		return "", false
	}
	return out.Node, true
}

// peerLatency computes the startup latency of a peer-served miss: same
// admission model, peer-link bandwidth.
func (s *server) peerLatency(clip media.Clip) (netsim.Seconds, error) {
	return netsim.StartupLatency(clip, s.peerAlloc, s.admission)
}

package main

// cluster_chaos_test.go is the race-detector acceptance test of the
// cooperative cluster tier (ISSUE 9): three clustered nodes serve a Zipf
// workload while the peer links degrade through internal/fault profiles
// (slow, flaky links), then one node is killed and another partitioned.
// Survivors must keep serving, every node's counting and byte identities
// must hold exactly, and the cooperative hit rate must beat a no-peer
// baseline driven with the identical request schedule.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mediacache/internal/api"
	"mediacache/internal/cacheclient"
	"mediacache/internal/cluster"
	"mediacache/internal/fault"
	"mediacache/internal/media"
	"mediacache/internal/randutil"
	"mediacache/internal/zipf"
)

// chaosTransport degrades a node's outbound peer links: every round trip
// consults a deterministic fault injector (slow/flaky link), a blocked-host
// set models a network partition from specific peers, and cutAll models
// this node's own uplink going dark.
type chaosTransport struct {
	mu      sync.Mutex
	inj     *fault.Injector
	blocked map[string]bool
	cutAll  atomic.Bool
}

func (ct *chaosTransport) block(host string) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if ct.blocked == nil {
		ct.blocked = make(map[string]bool)
	}
	ct.blocked[host] = true
}

func (ct *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if ct.cutAll.Load() {
		return nil, errors.New("chaos: node partitioned, all peer links dark")
	}
	ct.mu.Lock()
	blocked := ct.blocked[req.URL.Host]
	var f fault.Fault
	if ct.inj != nil {
		f = ct.inj.Next()
	}
	ct.mu.Unlock()
	if blocked {
		return nil, fmt.Errorf("chaos: peer %s unreachable", req.URL.Host)
	}
	if f.Latency > 0 {
		time.Sleep(f.Latency)
	}
	if f.Failed() {
		return nil, fmt.Errorf("chaos: injected %v on peer link", f.Kind)
	}
	return http.DefaultTransport.RoundTrip(req)
}

// clusterNode is one cacheserver process of the test ring.
type clusterNode struct {
	id        string
	srv       *server
	ts        *httptest.Server
	transport *chaosTransport
}

func (n *clusterNode) host(t *testing.T) string {
	t.Helper()
	u, err := url.Parse(n.ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

// newChaosNode builds one clustered node whose peer links run through a
// chaosTransport fed by profile (seeded per node, so schedules are
// deterministic and distinct).
func newChaosNode(t *testing.T, id string, seed uint64, profile fault.Profile, clustered bool) *clusterNode {
	t.Helper()
	ct := &chaosTransport{}
	if profile.Enabled() {
		ct.inj = fault.New(profile, seed)
	}
	cfg := testConfig()
	cfg.shards = 2
	cfg.seed = seed
	if clustered {
		cfg.cluster = clusterConfig{
			nodeID:     id,
			replicas:   2,
			hedgeDelay: 2 * time.Millisecond,
			// The loop is never started in tests; digests refresh on demand.
			digestInterval: time.Hour,
			peerAlloc:      100 * media.Mbps,
			client: cacheclient.Config{
				BaseURL:        "http://placeholder.invalid",
				MaxAttempts:    2,
				AttemptTimeout: 500 * time.Millisecond,
				BaseBackoff:    time.Millisecond,
				MaxBackoff:     5 * time.Millisecond,
				HTTPClient:     &http.Client{Transport: ct},
			},
		}
	}
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &clusterNode{id: id, srv: srv, ts: ts, transport: ct}
}

// driveStats aggregates what the drivers observed per node.
type driveStats struct {
	served     uint64 // 200s
	hits       uint64 // outcome "hit"
	missCached uint64 // outcome "miss-cached"
	peerWon    uint64 // responses naming a serving peer
}

// drive sends schedule[i] to nodes[i%len(nodes)] (skipping nodes marked
// dead) with `workers` concurrent clients and returns per-node totals.
func driveCluster(t *testing.T, nodes []*clusterNode, dead map[string]bool, schedule []media.ClipID, workers int) map[string]*driveStats {
	t.Helper()
	stats := make(map[string]*driveStats, len(nodes))
	for _, n := range nodes {
		stats[n.id] = &driveStats{}
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	per := (len(schedule) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := min(lo+per, len(schedule))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				n := nodes[i%len(nodes)]
				if dead[n.id] {
					continue
				}
				resp, err := http.Get(fmt.Sprintf("%s/v1/clips/%d", n.ts.URL, schedule[i]))
				if err != nil {
					t.Errorf("node %s: request failed: %v", n.id, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("node %s: clip %d: status %d", n.id, schedule[i], resp.StatusCode)
					resp.Body.Close()
					return
				}
				var clip api.Clip
				if err := json.NewDecoder(resp.Body).Decode(&clip); err != nil {
					t.Errorf("node %s: bad clip body: %v", n.id, err)
					resp.Body.Close()
					return
				}
				resp.Body.Close()
				mu.Lock()
				st := stats[n.id]
				st.served++
				switch clip.Outcome {
				case "hit":
					st.hits++
				case "miss-cached":
					st.missCached++
				}
				if clip.Peer != "" {
					st.peerWon++
				}
				mu.Unlock()
			}
		}(lo, hi)
	}
	wg.Wait()
	return stats
}

// refreshAll pulls digests on every live node.
func refreshAll(t *testing.T, nodes []*clusterNode, dead map[string]bool) {
	t.Helper()
	for _, n := range nodes {
		if !dead[n.id] {
			n.srv.cluster.RefreshDigests(context.Background())
		}
	}
}

// assertIdentities checks the engine's counting and byte identities on one
// node's aggregated pool snapshot. missCached is the driver-observed
// miss-cached outcome count — the engine does not track it separately, so
// the identity closes over what the clients saw.
func assertIdentities(t *testing.T, n *clusterNode, missCached uint64) {
	t.Helper()
	st := n.srv.pool.Stats()
	if got := st.Hits + missCached + st.Bypassed + st.FetchFailed; st.Requests != got {
		t.Errorf("node %s: counting identity violated: requests %d != hits %d + missCached %d + bypassed %d + fetchFailed %d",
			n.id, st.Requests, st.Hits, missCached, st.Bypassed, st.FetchFailed)
	}
	if st.BytesHit+st.BytesFetched+st.BytesFailed != st.BytesReferenced {
		t.Errorf("node %s: byte identity violated: hit %d + fetched %d + failed %d != referenced %d",
			n.id, st.BytesHit, st.BytesFetched, st.BytesFailed, st.BytesReferenced)
	}
}

// zipfSchedule draws a deterministic Zipf request schedule over the paper
// repository.
func zipfSchedule(t *testing.T, n int, seed uint64) []media.ClipID {
	t.Helper()
	repo := media.PaperRepository()
	dist, err := zipf.New(repo.N(), zipf.DefaultMean)
	if err != nil {
		t.Fatal(err)
	}
	src := randutil.NewSource(seed)
	ids := make([]media.ClipID, n)
	for i := range ids {
		ids[i] = media.ClipID(dist.Sample(src)) // Sample is 1-indexed
	}
	return ids
}

func TestClusterChaosDrive(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node chaos drive")
	}
	// Slow, flaky peer links: 5% outright failures plus ~1ms of injected
	// latency on every peer round trip. The public clip routes stay clean —
	// chaos lives between the nodes, not between client and node.
	linkProfile := fault.Profile{ErrorRate: 0.05, Latency: time.Millisecond, Jitter: 500 * time.Microsecond}
	nodes := []*clusterNode{
		newChaosNode(t, "n1", 101, linkProfile, true),
		newChaosNode(t, "n2", 102, linkProfile, true),
		newChaosNode(t, "n3", 103, linkProfile, true),
	}
	// Two-phase bring-up: ring URLs exist only after the listeners start.
	for _, n := range nodes {
		var peers []cluster.Peer
		for _, p := range nodes {
			if p.id != n.id {
				peers = append(peers, cluster.Peer{ID: p.id, URL: p.ts.URL})
			}
		}
		if err := n.srv.cluster.SetPeers(peers); err != nil {
			t.Fatal(err)
		}
	}

	schedule := zipfSchedule(t, 1800, 7)
	warm, chaosPhase := schedule[:1200], schedule[1200:]

	// Phase 1: full ring, degraded links. Interleave digest refreshes so
	// the absent-verdict veto and the probe path both see traffic.
	none := map[string]bool{}
	stats1 := driveCluster(t, nodes, none, warm[:300], 4)
	refreshAll(t, nodes, none)
	stats2 := driveCluster(t, nodes, none, warm[300:], 6)
	refreshAll(t, nodes, none)

	// Phase 2: kill n3 (process gone, listener closed), partition n2 (its
	// uplink dark, and n1 cannot reach it). Survivors must keep serving
	// every request.
	nodes[2].ts.Close()
	nodes[1].transport.cutAll.Store(true)
	nodes[0].transport.block(nodes[1].host(t))
	nodes[0].transport.block(nodes[2].host(t))
	dead := map[string]bool{"n3": true}
	stats3 := driveCluster(t, nodes, dead, chaosPhase, 6)

	// Every node — including the killed one's engine — holds its
	// identities, and driver-observed totals match each node's engine
	// exactly: peer traffic (served on behalf of siblings) must not
	// inflate them.
	var coopServed, coopHits, coopPeer uint64
	for _, n := range nodes {
		var served, hits, missCached, peer uint64
		for _, st := range []map[string]*driveStats{stats1, stats2, stats3} {
			served += st[n.id].served
			hits += st[n.id].hits
			missCached += st[n.id].missCached
			peer += st[n.id].peerWon
		}
		assertIdentities(t, n, missCached)
		pst := n.srv.pool.Stats()
		if pst.Requests != served {
			t.Errorf("node %s: engine requests %d != driver-observed 200s %d", n.id, pst.Requests, served)
		}
		if pst.Hits != hits {
			t.Errorf("node %s: engine hits %d != driver-observed hits %d", n.id, pst.Hits, hits)
		}
		coopServed += served
		coopHits += hits
		coopPeer += peer
	}
	if coopPeer == 0 {
		t.Fatal("no request was peer-served; the cooperative tier never engaged")
	}
	cnt1 := nodes[0].srv.cluster.Counters()
	if cnt1.PeerHits == 0 {
		t.Error("n1 booked no peer hits despite peer-served responses")
	}
	if cnt1.DigestRefreshes == 0 {
		t.Error("n1 refreshed no digests")
	}

	// The partitioned node must have kept serving alone: all its phase-2
	// requests answered, none peer-served.
	if st := stats3["n2"]; st.served == 0 {
		t.Error("partitioned n2 served nothing in phase 2")
	} else if st.peerWon != 0 {
		t.Errorf("partitioned n2 reported %d peer-served responses", st.peerWon)
	}

	// No-peer baseline: identical schedule, identical routing (including
	// the dead-node skips), standalone nodes. The cooperative hit rate —
	// local hits plus peer-served misses over requests — must beat it.
	base := []*clusterNode{
		newChaosNode(t, "n1", 101, fault.Profile{}, false),
		newChaosNode(t, "n2", 102, fault.Profile{}, false),
		newChaosNode(t, "n3", 103, fault.Profile{}, false),
	}
	b1 := driveCluster(t, base, none, warm[:300], 4)
	b2 := driveCluster(t, base, none, warm[300:], 6)
	base[2].ts.Close()
	b3 := driveCluster(t, base, map[string]bool{"n3": true}, chaosPhase, 6)
	var baseServed, baseHits uint64
	for _, n := range base {
		for _, st := range []map[string]*driveStats{b1, b2, b3} {
			baseServed += st[n.id].served
			baseHits += st[n.id].hits
		}
	}
	if baseServed != coopServed {
		t.Fatalf("baseline served %d requests, cluster served %d — schedules diverged", baseServed, coopServed)
	}
	coopRate := float64(coopHits+coopPeer) / float64(coopServed)
	baseRate := float64(baseHits) / float64(baseServed)
	if coopRate <= baseRate {
		t.Errorf("cooperative hit rate %.4f does not beat the no-peer baseline %.4f", coopRate, baseRate)
	}
	t.Logf("coop rate %.4f (local %.4f + peer %d/%d), baseline %.4f; n1 counters %+v",
		coopRate, float64(coopHits)/float64(coopServed), coopPeer, coopServed, baseRate, cnt1)
}

// TestClusterRebalanceOverHTTP exercises the ring-rebalance protocol: when
// membership changes, a node's resident set moves to its new owner through
// the portable snapshot — pulled and restored over the wire with the peer
// client, across different shard counts, preserving residency exactly.
func TestClusterRebalanceOverHTTP(t *testing.T) {
	src := newChaosNode(t, "src", 21, fault.Profile{}, true)
	cfg := testConfig()
	cfg.shards = 3 // different partitioning on the receiving node
	// Hash re-partitioning skews per-shard load; a bigger cache keeps every
	// slice under capacity so the restore validator accepts the snapshot.
	cfg.ratio = 0.25
	cfg.seed = 22
	cfg.cluster = clusterConfig{nodeID: "dst", replicas: 2, digestInterval: time.Hour}
	dstSrv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dstTS := httptest.NewServer(dstSrv)
	t.Cleanup(dstTS.Close)

	// Warm the source node, then hand its state to dst as a ring change
	// would: dst discovers src departing, pulls its snapshot, restores it.
	for _, id := range zipfSchedule(t, 200, 5) {
		resp, err := http.Get(fmt.Sprintf("%s/v1/clips/%d", src.ts.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if err := dstSrv.cluster.SetPeers([]cluster.Peer{{ID: "src", URL: src.ts.URL}}); err != nil {
		t.Fatal(err)
	}
	cl := dstSrv.cluster.PeerClient("src")
	if cl == nil {
		t.Fatal("no peer client for src")
	}
	snap, err := cl.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	dstCl, err := cacheclient.New(cacheclient.Config{BaseURL: dstTS.URL})
	if err != nil {
		t.Fatal(err)
	}
	if err := dstCl.Restore(context.Background(), snap); err != nil {
		t.Fatal(err)
	}

	wantIDs := src.srv.pool.ResidentIDs()
	gotIDs := dstSrv.pool.ResidentIDs()
	if len(wantIDs) == 0 {
		t.Fatal("source node has nothing resident; rebalance test is vacuous")
	}
	if fmt.Sprint(wantIDs) != fmt.Sprint(gotIDs) {
		t.Fatalf("resident sets diverged after rebalance:\nsrc %v\ndst %v", wantIDs, gotIDs)
	}
	// The moved clips are immediately peer-servable from the new owner.
	var cc api.ClusterClip
	resp := getJSON(t, fmt.Sprintf("%s/v1/cluster/clips/%d", dstTS.URL, wantIDs[0]), &cc)
	if resp.StatusCode != http.StatusOK || cc.Node != "dst" {
		t.Fatalf("rebalanced clip %d not servable from dst: status %d %+v", wantIDs[0], resp.StatusCode, cc)
	}
}

// TestClusterRoutesStandalone pins the standalone behaviour: without
// -node-id the cluster routes do not exist and clip responses carry no
// peer field.
func TestClusterRoutesStandalone(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/v1/cluster", "/v1/cluster/digest", "/v1/cluster/clips/1"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s on standalone server: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestClusterPeerServeAndDigest pins the peer-facing routes of one
// clustered node: digest lists exactly the fully resident clips, the
// peer-serve read answers 200 only for them and never perturbs the node's
// request statistics.
func TestClusterPeerServeAndDigest(t *testing.T) {
	n := newChaosNode(t, "solo", 55, fault.Profile{}, true)

	// Make some clips resident.
	for _, id := range []media.ClipID{1, 2, 3} {
		resp, err := http.Get(fmt.Sprintf("%s/v1/clips/%d", n.ts.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	before := n.srv.pool.Stats()

	var d api.ClusterDigest
	getJSON(t, n.ts.URL+"/v1/cluster/digest", &d)
	if d.Node != "solo" || d.Seq == 0 {
		t.Fatalf("digest metadata wrong: %+v", d)
	}
	listed := make(map[media.ClipID]bool, len(d.Clips))
	for _, id := range d.Clips {
		listed[id] = true
	}
	all, _ := n.srv.pool.Residency()
	for _, c := range all {
		if full := c.Bytes == c.Clip.Size; full != listed[c.Clip.ID] {
			t.Errorf("clip %d: fully resident %v but digest-listed %v", c.Clip.ID, full, listed[c.Clip.ID])
		}
	}
	if len(d.Clips) == 0 {
		t.Fatal("digest lists nothing after three admitted clips")
	}

	// Peer-serve a resident clip and probe a non-resident one.
	var cc api.ClusterClip
	resp := getJSON(t, fmt.Sprintf("%s/v1/cluster/clips/%d", n.ts.URL, d.Clips[0]), &cc)
	if resp.StatusCode != http.StatusOK || cc.Node != "solo" || cc.SizeBytes <= 0 {
		t.Fatalf("peer-serve of resident clip: status %d body %+v", resp.StatusCode, cc)
	}
	var missing media.ClipID
	for id := media.ClipID(1); id <= media.ClipID(n.srv.pool.Repository().N()); id++ {
		if !listed[id] {
			missing = id
			break
		}
	}
	if resp := getJSON(t, fmt.Sprintf("%s/v1/cluster/clips/%d", n.ts.URL, missing), nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("peer-serve of non-resident clip %d: status %d, want 404", missing, resp.StatusCode)
	}

	// Peer traffic must not count as requests on the serving node.
	after := n.srv.pool.Stats()
	if after.Requests != before.Requests {
		t.Errorf("peer-serve perturbed request count: %d -> %d", before.Requests, after.Requests)
	}
	st := n.srv.cluster.Counters()
	if st.PeerServed != 1 || st.PeerServedBytes != uint64(cc.SizeBytes) {
		t.Errorf("peer-serve counters = served %d bytes %d, want 1/%d", st.PeerServed, st.PeerServedBytes, cc.SizeBytes)
	}

	// The status route reflects the (peer-less) ring.
	var cs api.ClusterStatus
	getJSON(t, n.ts.URL+"/v1/cluster", &cs)
	if cs.Node != "solo" || cs.Replicas != 2 || len(cs.Peers) != 0 {
		t.Errorf("cluster status = %+v", cs)
	}
	if cs.PeerServed != 1 {
		t.Errorf("status PeerServed = %d, want 1", cs.PeerServed)
	}
}

package main

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"

	"mediacache/internal/metrics"
)

// httpLatencyBuckets are the fixed per-route latency buckets: the engine
// services requests in microseconds, so the default Prometheus buckets
// would collapse everything into the first bucket.
var httpLatencyBuckets = []float64{
	.000025, .0001, .00025, .001, .0025, .01, .025, .1, .25, 1, 2.5,
}

// metricLabelRoute builds the route label for per-route instruments.
func metricLabelRoute(pattern string) metrics.Label {
	return metrics.Label{Name: "route", Value: pattern}
}

// registerCacheGauges exposes the cache's instantaneous state as callback
// gauges. Reads take the server mutex, so scrapes see consistent values;
// the metrics handler itself never holds the mutex while rendering.
func (s *server) registerCacheGauges() {
	locked := func(read func() float64) func() float64 {
		return func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return read()
		}
	}
	s.reg.GaugeFunc("mediacache_cache_used_bytes", "Bytes occupied by resident clips.",
		locked(func() float64 { return float64(s.cache.UsedBytes()) }))
	s.reg.GaugeFunc("mediacache_cache_capacity_bytes", "Cache capacity S_T.",
		locked(func() float64 { return float64(s.cache.Capacity()) }))
	s.reg.GaugeFunc("mediacache_cache_resident_clips", "Clips currently resident.",
		locked(func() float64 { return float64(s.cache.NumResident()) }))
}

// handleMetrics services GET /v1/metrics with Prometheus text exposition.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		// Headers are gone; nothing recoverable to report.
		return
	}
}

// healthResponse is the JSON body of GET /v1/healthz.
type healthResponse struct {
	Status        string `json:"status"`
	ResidentClips int    `json:"residentClips"`
	UsedBytes     int64  `json:"usedBytes"`
	CapacityBytes int64  `json:"capacityBytes"`
}

// handleHealthz services GET /v1/healthz: liveness plus the cache's core
// invariant (used ≤ capacity). An invariant violation answers 500 so
// orchestrators restart a corrupted instance.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	resp := healthResponse{
		Status:        "ok",
		ResidentClips: s.cache.NumResident(),
		UsedBytes:     int64(s.cache.UsedBytes()),
		CapacityBytes: int64(s.cache.Capacity()),
	}
	s.mu.Unlock()
	if resp.UsedBytes > resp.CapacityBytes {
		resp.Status = "invariant violated: used > capacity"
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		writeJSONBody(w, resp)
		return
	}
	writeJSON(w, resp)
}

// versionResponse is the JSON body of GET /v1/version.
type versionResponse struct {
	API        string `json:"api"`
	GoVersion  string `json:"goVersion"`
	Policy     string `json:"policy"`
	PolicySpec string `json:"policySpec"`
	Module     string `json:"module,omitempty"`
	Revision   string `json:"revision,omitempty"`
}

// handleVersion services GET /v1/version: API version, runtime and build
// identity, and the policy this instance runs.
func (s *server) handleVersion(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	name := s.cache.Policy().Name()
	s.mu.Unlock()
	resp := versionResponse{
		API:        "v1",
		GoVersion:  runtime.Version(),
		Policy:     name,
		PolicySpec: s.policySpec,
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		resp.Module = info.Main.Path
		for _, kv := range info.Settings {
			if kv.Key == "vcs.revision" {
				resp.Revision = kv.Value
			}
		}
	}
	writeJSON(w, resp)
}

// mountPprof exposes net/http/pprof under /debug/pprof/ on the server mux.
// Gated behind the -pprof flag: profiles reveal internals and cost CPU, so
// they are opt-in, but when enabled they share the port, middleware and
// access log of the API.
func (s *server) mountPprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

package main

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"

	"mediacache/internal/api"
	"mediacache/internal/metrics"
	"mediacache/internal/obs"
)

// httpLatencyBuckets are the fixed per-route latency buckets: the engine
// services requests in microseconds, so the default Prometheus buckets
// would collapse everything into the first bucket.
var httpLatencyBuckets = []float64{
	.000025, .0001, .00025, .001, .0025, .01, .025, .1, .25, 1, 2.5,
}

// metricLabelRoute builds the route label for per-route instruments.
func metricLabelRoute(pattern string) metrics.Label {
	return metrics.Label{Name: "route", Value: pattern}
}

// registerCacheGauges exposes the pool's instantaneous state as callback
// gauges: the pool-wide totals under the historical mediacache_cache_*
// names, plus the per-shard series (shard="i") and fetch-coalescing
// counters through obs.RegisterShardMetrics. Pool-wide reads lock every
// shard for one consistent snapshot; per-shard reads lock only their own
// shard, so scrapes never serialize the whole pool.
func (s *server) registerCacheGauges() {
	s.reg.GaugeFunc("mediacache_cache_used_bytes", "Bytes occupied by resident clips.",
		func() float64 { return float64(s.pool.UsedBytes()) })
	s.reg.GaugeFunc("mediacache_cache_capacity_bytes", "Cache capacity S_T.",
		func() float64 { return float64(s.pool.Capacity()) })
	s.reg.GaugeFunc("mediacache_cache_resident_clips", "Clips currently resident.",
		func() float64 { return float64(s.pool.NumResident()) })
	if s.pool.SegmentSize() > 0 {
		s.reg.GaugeFunc("mediacache_cache_segment_size_bytes", "Fixed segment granularity.",
			func() float64 { return float64(s.pool.SegmentSize()) })
		s.reg.GaugeFunc("mediacache_cache_resident_segments", "Segments currently resident.",
			func() float64 { return float64(s.pool.ResidentSegments()) })
	}
	obs.RegisterShardMetrics(s.reg, s.pool)
}

// handleMetrics services GET /v1/metrics with Prometheus text exposition.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		// Headers are gone; nothing recoverable to report.
		return
	}
}

// handleHealthz services GET /v1/healthz: liveness plus the cache's core
// invariant (used ≤ capacity) checked per shard and in aggregate. An
// invariant violation answers 500 so orchestrators restart a corrupted
// instance.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := api.Health{Status: "ok"}
	violated := false
	for _, sh := range s.pool.ShardStats() {
		resp.ResidentClips += sh.NumResident
		resp.UsedBytes += int64(sh.UsedBytes)
		resp.CapacityBytes += int64(sh.Capacity)
		if sh.UsedBytes > sh.Capacity {
			violated = true
		}
	}
	if violated || resp.UsedBytes > resp.CapacityBytes {
		resp.Status = "invariant violated: used > capacity"
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		writeJSONBody(w, resp)
		return
	}
	writeJSON(w, resp)
}

// handleVersion services GET /v1/version: API version, runtime and build
// identity, and the policy this instance runs.
func (s *server) handleVersion(w http.ResponseWriter, r *http.Request) {
	resp := api.BuildVersion{
		API:        "v1",
		GoVersion:  runtime.Version(),
		Policy:     s.pool.PolicyName(),
		PolicySpec: s.policySpec,
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		resp.Module = info.Main.Path
		for _, kv := range info.Settings {
			if kv.Key == "vcs.revision" {
				resp.Revision = kv.Value
			}
		}
	}
	writeJSON(w, resp)
}

// mountPprof exposes net/http/pprof under /debug/pprof/ on the server mux.
// Gated behind the -pprof flag: profiles reveal internals and cost CPU, so
// they are opt-in, but when enabled they share the port, middleware and
// access log of the API.
func (s *server) mountPprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

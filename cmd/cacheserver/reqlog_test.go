package main

import (
	"bytes"
	"fmt"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"mediacache/internal/media"
	"mediacache/internal/trace"
	"mediacache/internal/workload"
)

// syncBuffer is a bytes.Buffer the reqlog can write while the test reads;
// requests here are issued serially so a plain buffer would do, but the
// middleware stack logs concurrently with the response in flight.
type syncBuffer struct {
	mu  chan struct{}
	buf bytes.Buffer
}

func newSyncBuffer() *syncBuffer {
	b := &syncBuffer{mu: make(chan struct{}, 1)}
	b.mu <- struct{}{}
	return b
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	<-b.mu
	defer func() { b.mu <- struct{}{} }()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	<-b.mu
	defer func() { b.mu <- struct{}{} }()
	return b.buf.String()
}

func TestReqLog(t *testing.T) {
	buf := newSyncBuffer()
	cfg := testConfig()
	cfg.reqlog = buf
	_, ts := newTestServerConfig(t, cfg)

	get := func(path string, hdr map[string]string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	get("/v1/clips/3", map[string]string{"X-Client-ID": "c0"})
	get("/v1/clips/3", map[string]string{"X-Client-ID": "c0"})
	get("/v1/clips/5", map[string]string{"X-Client-ID": "c1", "Range": "bytes=0-1048575"})
	// Batch route logs per item under the same client.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/batch",
		strings.NewReader(`{"items":[{"clip":7},{"clip":3}]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Client-ID", "c2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// HEAD and unknown clips must not be logged.
	if r, err := http.Head(ts.URL + "/v1/clips/3"); err == nil {
		r.Body.Close()
	}
	get("/v1/clips/999999", nil)

	events, err := trace.ReadNDJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("logged %d events, want 5:\n%s", len(events), buf.String())
	}
	for i, e := range events {
		if e.Tick != int64(i+1) {
			t.Errorf("event %d tick = %d, want %d", i, e.Tick, i+1)
		}
		if e.WallMicros == 0 || e.Policy == "" || e.Status == 0 || e.SizeBytes == 0 {
			t.Errorf("event %d missing stamps: %+v", i, e)
		}
	}
	if events[0].Client != "c0" || events[0].Hit || events[0].Outcome == "" || events[0].ModelLatencySeconds == 0 {
		t.Errorf("first reference should be a modeled-latency miss by c0: %+v", events[0])
	}
	if !events[1].Hit || events[1].ModelLatencySeconds != 0 {
		t.Errorf("second reference should be a hit: %+v", events[1])
	}
	if events[2].Client != "c1" || !trace.Ranged(events[2]) || events[2].LengthBytes != 1048576 {
		t.Errorf("ranged reference mislogged: %+v", events[2])
	}
	if events[3].Client != "c2" || events[3].Clip != 7 || events[4].Clip != 3 {
		t.Errorf("batch items mislogged: %+v / %+v", events[3], events[4])
	}
}

// driveSpec replays a session spec against the server in real time (each
// request issued at its scheduled arrival) and returns the span driven.
func driveSpec(t *testing.T, ts string, spec workload.FitSpec, seed uint64, n int) {
	t.Helper()
	src, err := workload.NewSessionSource(spec, media.PaperRepository(), seed)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < n; i++ {
		tr, _ := src.NextTimed()
		if wait := time.Duration(tr.ArrivalMicros)*time.Microsecond - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		req, err := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/v1/clips/%d", ts, tr.Clip), nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Client-ID", tr.Client)
		if tr.Ranged {
			req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", tr.Start, tr.Start+tr.Length-1))
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusPartialContent {
			t.Fatalf("request %d (clip %d): status %d", i, tr.Clip, resp.StatusCode)
		}
	}
}

// sessionStats reduces a measured log to the round-trip metrics.
func sessionStats(events []trace.Event, gapMicros int64) (hitRate float64, p50, p99 int64) {
	sessions := trace.Sessionize(events, gapMicros)
	var gaps []int64
	hits, total := 0, 0
	for i := range sessions {
		gaps = sessions[i].InterArrivals(gaps)
		hits += sessions[i].Hits()
		total += sessions[i].Len()
	}
	return float64(hits) / float64(total), workload.FitQuantile(gaps, 0.5), workload.FitQuantile(gaps, 0.99)
}

// TestReqLogFitRoundTrip is the ISSUE 10 acceptance loop over the real
// wire: traffic with known session structure drives `-reqlog`; the log is
// fitted; the fitted spec is replayed against a fresh server; measured and
// replayed logs must agree on per-session hit rate and inter-arrival
// p50/p99 within the documented wall-clock tolerances (EXPERIMENTS.md):
// hit rate ± 0.15, quantiles within a factor of 2.5 — generous because
// arrival scheduling rides time.Sleep under CI jitter, where the virtual
// -clock round trip in internal/trace pins the same loop to within a few
// percent.
func TestReqLogFitRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock round trip; skipped with -short")
	}
	truth := workload.FitSpec{
		Clips: 150, Theta: 0.27, Clients: 6, Sess: 6,
		ThinkMicros: 4000, GapMicros: 80_000,
		RangedFrac: 0.4, PrefixFrac: 0.75, LengthFrac: 0.4,
	}
	const (
		n   = 900
		gap = 20_000 // sessionizer threshold: 5x think, 1/4 gap
	)
	run := func(spec workload.FitSpec, seed uint64) []trace.Event {
		buf := newSyncBuffer()
		cfg := testConfig()
		cfg.reqlog = buf
		_, ts := newTestServerConfig(t, cfg)
		driveSpec(t, ts.URL, spec, seed, n)
		events, err := trace.ReadNDJSON(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatal(err)
		}
		if len(events) != n {
			t.Fatalf("logged %d events, want %d", len(events), n)
		}
		return events
	}

	measured := run(truth, 1)
	fitted, err := trace.Fit(measured, gap)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fitted: %s", fitted)
	if fitted.Clients != truth.Clients {
		t.Errorf("clients = %d, want %d", fitted.Clients, truth.Clients)
	}
	// Wall-clock think/gap estimates absorb scheduling jitter and service
	// time; assert order of magnitude, not precision.
	if fitted.ThinkMicros < truth.ThinkMicros/2 || fitted.ThinkMicros > truth.ThinkMicros*5/2 {
		t.Errorf("think = %dµs, want within 2.5x of %dµs", fitted.ThinkMicros, truth.ThinkMicros)
	}

	replayed := run(fitted, 2)
	mHR, mP50, mP99 := sessionStats(measured, gap)
	rHR, rP50, rP99 := sessionStats(replayed, gap)
	t.Logf("measured: hitrate=%.4f p50=%dµs p99=%dµs", mHR, mP50, mP99)
	t.Logf("replayed: hitrate=%.4f p50=%dµs p99=%dµs", rHR, rP50, rP99)
	if math.Abs(mHR-rHR) > 0.15 {
		t.Errorf("per-session hit rate: measured %.4f, replayed %.4f (tolerance 0.15)", mHR, rHR)
	}
	if ratio := float64(rP50) / float64(mP50); ratio < 0.4 || ratio > 2.5 {
		t.Errorf("inter-arrival p50: measured %d, replayed %d (tolerance 2.5x)", mP50, rP50)
	}
	if ratio := float64(rP99) / float64(mP99); ratio < 0.4 || ratio > 2.5 {
		t.Errorf("inter-arrival p99: measured %d, replayed %d (tolerance 2.5x)", mP99, rP99)
	}
}

package main

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mediacache/internal/fault"
	"mediacache/internal/media"
	"mediacache/internal/metrics"
)

// chaosConfig is the baseline config with a fast, failure-heavy fault
// profile (no injected latency or hold, so tests stay quick).
func chaosConfig(p fault.Profile) config {
	cfg := testConfig()
	cfg.faults = p
	return cfg
}

func TestChaosInjectsFaults(t *testing.T) {
	p := fault.Profile{ErrorRate: 0.3, TimeoutRate: 0.1, PartialRate: 0.1,
		Hold: time.Millisecond}
	_, ts := newTestServerConfig(t, chaosConfig(p))
	statuses := map[int]int{}
	for i := 0; i < 200; i++ {
		resp, err := http.Get(ts.URL + "/v1/clips/1")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		statuses[resp.StatusCode]++
		if resp.StatusCode != http.StatusOK && resp.Header.Get("Retry-After") == "" {
			t.Fatalf("faulted response %d missing Retry-After", resp.StatusCode)
		}
	}
	if statuses[http.StatusOK] == 0 {
		t.Fatal("no request succeeded under a 50% failure profile")
	}
	if statuses[http.StatusBadGateway] == 0 {
		t.Errorf("no 502s injected: %v", statuses)
	}
	if statuses[http.StatusGatewayTimeout] == 0 {
		t.Errorf("no 504s injected: %v", statuses)
	}
}

// TestChaosDeterministic pins that two servers with the same seed and
// profile inject the identical fault sequence.
func TestChaosDeterministic(t *testing.T) {
	p := fault.Profile{ErrorRate: 0.2, TimeoutRate: 0.1, PartialRate: 0.1,
		Hold: time.Millisecond}
	trace := func(seed uint64) string {
		cfg := chaosConfig(p)
		cfg.seed = seed
		_, ts := newTestServerConfig(t, cfg)
		var b strings.Builder
		for i := 0; i < 100; i++ {
			resp, err := http.Get(ts.URL + "/v1/clips/1")
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			fmt.Fprintf(&b, "%d,", resp.StatusCode)
		}
		return b.String()
	}
	if a, b := trace(1), trace(1); a != b {
		t.Fatalf("same seed gave different fault sequences:\n%s\n%s", a, b)
	}
	if a, c := trace(1), trace(2); a == c {
		t.Fatal("different seeds gave identical fault sequences")
	}
}

// TestChaosOnlyClipRoute checks the control and observability routes stay
// reliable under a profile that fails every fetch.
func TestChaosOnlyClipRoute(t *testing.T) {
	_, ts := newTestServerConfig(t, chaosConfig(fault.Profile{ErrorRate: 1}))
	for _, path := range []string{"/v1/stats", "/v1/healthz", "/v1/metrics", "/v1/policies"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s returned %d under chaos", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/clips/1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("clip route returned %d, want 502 with ErrorRate 1", resp.StatusCode)
	}
}

// TestChaosMetricsExposed checks injected faults surface in /v1/metrics.
func TestChaosMetricsExposed(t *testing.T) {
	_, ts := newTestServerConfig(t, chaosConfig(fault.Profile{ErrorRate: 1}))
	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL + "/v1/clips/1")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `mediacache_faults_injected_total{kind="error"} 5`) {
		t.Fatalf("metrics missing injected-fault counter:\n%s", body)
	}
}

// TestLoadShed saturates a 1-in-flight server and checks the overflow
// answers 429 with a Retry-After hint and shows up in the shed counter.
func TestLoadShed(t *testing.T) {
	cfg := testConfig()
	cfg.maxInFlight = 1
	srv, ts := newTestServerConfig(t, cfg)

	// Park one request inside the handler so concurrent ones exceed the
	// bound deterministically.
	release := make(chan struct{})
	entered := make(chan struct{})
	srv.mux.HandleFunc("GET /v1/slow", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusNoContent)
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(ts.URL + "/v1/slow")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-entered

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request got %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	close(release)
	<-done

	if got := srv.shed.shed.Value(); got == 0 {
		t.Error("shed counter not incremented")
	}
	// With the slot free again the same request succeeds.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-shed request got %d, want 200", resp.StatusCode)
	}
}

// TestLoadShedUnbounded checks the default (limit 0) never sheds.
func TestLoadShedUnbounded(t *testing.T) {
	_, ts := newTestServer(t)
	var wg sync.WaitGroup
	var failed atomic.Int64
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/stats")
			if err != nil {
				failed.Add(1)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				failed.Add(1)
			}
		}()
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d requests failed with shedding disabled", failed.Load())
	}
}

// testClip is a minimal clip for the admission-hook tests.
var testClip = media.Clip{ID: 1, Size: media.MB, Kind: media.Video}

// TestMemGuardBypassesAdmission drives the pressure monitor with fake heap
// readings and checks admission flips to bypass and back.
func TestMemGuardBypassesAdmission(t *testing.T) {
	reg := metrics.NewRegistry()
	g := newMemGuard(1000, reg)
	heap := uint64(500)
	now := time.Unix(0, 0)
	g.readHeap = func() uint64 { return heap }
	g.now = func() time.Time { return now }

	clip := testClip
	if !g.admission(clip, 0) {
		t.Fatal("admission declined below the limit")
	}
	heap = 2000
	now = now.Add(memPressureInterval + time.Nanosecond)
	if g.admission(clip, 0) {
		t.Fatal("admission allowed above the limit")
	}
	if !g.degraded.Load() {
		t.Fatal("degraded flag not set")
	}
	// Within the sampling interval the cached verdict holds even though the
	// heap recovered.
	heap = 100
	if g.admission(clip, 0) {
		t.Fatal("verdict changed within the sampling interval")
	}
	now = now.Add(memPressureInterval + time.Nanosecond)
	if !g.admission(clip, 0) {
		t.Fatal("admission still declined after pressure cleared")
	}
}

// TestMemGuardDisabled checks limit 0 never degrades and never reads the
// heap.
func TestMemGuardDisabled(t *testing.T) {
	reg := metrics.NewRegistry()
	g := newMemGuard(0, reg)
	g.readHeap = func() uint64 { t.Fatal("ReadMemStats called with memlimit 0"); return 0 }
	if !g.admission(testClip, 0) {
		t.Fatal("admission declined with guard disabled")
	}
}

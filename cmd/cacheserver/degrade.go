package main

// degrade.go is the server's failure and degradation layer: deterministic
// fault injection on the clip-fetch path (the flaky wireless link of the
// paper's Section 1 scenario), load shedding when too many requests are in
// flight, and an admission bypass that stops caching new clips under
// memory pressure. All three are off by default and cost nothing when
// disabled.

import (
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mediacache/internal/fault"
	"mediacache/internal/media"
	"mediacache/internal/metrics"
	"mediacache/internal/vtime"
)

// retryAfterSeconds is the backoff hint attached to shed (429) and
// injected-fault (502/504) responses.
const retryAfterSeconds = "1"

// chaos injects faults into the clip route from a seeded schedule. The
// injector itself is single-threaded, so draws serialize on a mutex; the
// sleeps happen outside it.
type chaos struct {
	mu       sync.Mutex
	inj      *fault.Injector
	injected [fault.NumKinds]*metrics.Counter
}

// newChaos builds the fault middleware state for profile, seeded so that
// the same (profile, seed) pair replays the same fault schedule across
// server restarts.
func newChaos(profile fault.Profile, seed uint64, reg *metrics.Registry) *chaos {
	c := &chaos{inj: fault.New(profile, seed)}
	for _, k := range fault.Kinds() {
		c.injected[k] = reg.Counter("mediacache_faults_injected_total",
			"Faults injected into the clip-fetch path, by kind.",
			metrics.Label{Name: "kind", Value: k.String()})
	}
	return c
}

// draw takes the next scheduled fault.
func (c *chaos) draw() fault.Fault {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inj.Next()
}

// wrap applies the fault schedule to h: injected latency delays the
// response, an error fault answers 502, a timeout fault stalls for the
// profile's hold and answers 504, and a partial fault answers 502 after
// delivering nothing. Faulted requests never reach the cache, modelling a
// transfer that failed before the clip materialized.
func (c *chaos) wrap(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		f := c.draw()
		if f.Failed() {
			c.injected[f.Kind].Inc()
		}
		if f.Latency > 0 {
			time.Sleep(f.Latency)
		}
		switch f.Kind {
		case fault.None:
			h(w, r)
		case fault.Error:
			w.Header().Set("Retry-After", retryAfterSeconds)
			writeError(w, http.StatusBadGateway, "injected link error fetching clip")
		case fault.Timeout:
			time.Sleep(c.inj.Profile().HoldOrDefault())
			w.Header().Set("Retry-After", retryAfterSeconds)
			writeError(w, http.StatusGatewayTimeout, "injected link stall fetching clip")
		case fault.Partial:
			w.Header().Set("Retry-After", retryAfterSeconds)
			writeError(w, http.StatusBadGateway,
				"injected partial delivery (%.0f%% of clip) fetching clip", f.Fraction*100)
		}
	}
}

// shedder rejects requests once too many are in flight — the server's
// bounded-queue stand-in for the base station's admission control. A shed
// request answers 429 with a Retry-After hint and never touches the cache.
type shedder struct {
	inFlight atomic.Int64
	limit    int64
	shed     *metrics.Counter
}

// newShedder builds the load-shedding state; limit <= 0 disables shedding.
func newShedder(limit int, reg *metrics.Registry) *shedder {
	s := &shedder{limit: int64(limit)}
	s.shed = reg.Counter("mediacache_http_shed_total",
		"Requests rejected with 429 because too many were in flight.")
	reg.GaugeFunc("mediacache_http_shed_limit", "In-flight bound above which requests shed (0 = unbounded).",
		func() float64 { return float64(s.limit) })
	return s
}

// saturated reports whether the in-flight population has reached the shed
// bound — the signal a batch response's shed flag carries so open-loop
// drivers can count the batch against their shed budget even though the
// batch itself was admitted.
func (sh *shedder) saturated() bool {
	return sh.limit > 0 && sh.inFlight.Load() >= sh.limit
}

// wrap applies the in-flight bound to next.
func (sh *shedder) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sh.limit > 0 && sh.inFlight.Load() >= sh.limit {
			sh.shed.Inc()
			w.Header().Set("Retry-After", retryAfterSeconds)
			writeError(w, http.StatusTooManyRequests,
				"server overloaded: %d requests in flight", sh.inFlight.Load())
			return
		}
		sh.inFlight.Add(1)
		defer sh.inFlight.Add(-1)
		next.ServeHTTP(w, r)
	})
}

// memPressureInterval bounds how often the pressure monitor re-reads
// runtime memory statistics (ReadMemStats is not free).
const memPressureInterval = 100 * time.Millisecond

// memGuard flips the cache into bypass mode while the process heap exceeds
// a bound: under memory pressure the device keeps streaming clips but
// stops materializing them, shrinking the heap instead of fighting the
// allocator (the cache itself never grows past S_T — the guard protects
// against everything else in the process).
type memGuard struct {
	limit     uint64 // bytes of heap allowance; 0 disables
	degraded  atomic.Bool
	lastCheck atomic.Int64 // unix nanos of the last ReadMemStats
	now       func() time.Time
	readHeap  func() uint64
}

// newMemGuard builds the pressure monitor; limit 0 disables it.
func newMemGuard(limit uint64, reg *metrics.Registry) *memGuard {
	g := &memGuard{
		limit: limit,
		now:   time.Now,
		readHeap: func() uint64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return ms.HeapAlloc
		},
	}
	reg.GaugeFunc("mediacache_degraded_mode",
		"1 while admission is bypassed because heap use exceeds -memlimit.",
		func() float64 {
			if g.degraded.Load() {
				return 1
			}
			return 0
		})
	return g
}

// check refreshes the pressure flag, rate-limited to one ReadMemStats per
// memPressureInterval. Safe for concurrent use; extra callers within the
// interval just read the cached flag.
func (g *memGuard) check() {
	if g.limit == 0 {
		return
	}
	now := g.now().UnixNano()
	last := g.lastCheck.Load()
	if now-last < int64(memPressureInterval) || !g.lastCheck.CompareAndSwap(last, now) {
		return
	}
	g.degraded.Store(g.readHeap() > g.limit)
}

// degradedNow refreshes and reports the pressure flag.
func (g *memGuard) degradedNow() bool {
	g.check()
	return g.degraded.Load()
}

// admission is the core.WithAdmission hook: under pressure every cacheable
// miss is bypassed (streamed without caching).
func (g *memGuard) admission(media.Clip, vtime.Time) bool {
	g.check()
	return !g.degraded.Load()
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"strings"
	"testing"

	"mediacache/internal/api"
)

// TestRequestIDPropagation checks a client-supplied X-Request-ID is echoed
// and a missing one is minted.
func TestRequestIDPropagation(t *testing.T) {
	_, ts := newTestServer(t)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/stats", nil)
	req.Header.Set(requestIDHeader, "trace-me-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(requestIDHeader); got != "trace-me-123" {
		t.Errorf("propagated id = %q, want trace-me-123", got)
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(requestIDHeader); !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(got) {
		t.Errorf("minted id = %q, want 16 hex chars", got)
	}
}

// TestJSON404Envelope checks unmatched paths answer with the uniform JSON
// envelope instead of net/http's plain text.
func TestJSON404Envelope(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/no-such-route")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var envelope api.Error
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatalf("404 body is not the JSON envelope: %v", err)
	}
	if !strings.Contains(envelope.Error, "/v1/no-such-route") {
		t.Errorf("404 error %q should name the path", envelope.Error)
	}
}

// TestJSON405EnvelopeWithAllow checks wrong-method requests answer with the
// JSON envelope and an Allow header naming the supported method.
func TestJSON405EnvelopeWithAllow(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/stats", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
		t.Errorf("Allow = %q, want GET", allow)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var envelope api.Error
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatalf("405 body is not the JSON envelope: %v", err)
	}
	if envelope.Error == "" {
		t.Error("empty 405 error message")
	}
}

// TestAccessLogRecords checks the slog access log carries the request id,
// route and status.
func TestAccessLogRecords(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig()
	cfg.logger = slog.New(slog.NewTextHandler(&buf, nil))
	_, ts := newTestServerConfig(t, cfg)
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	req.Header.Set(requestIDHeader, "log-me")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	out := buf.String()
	for _, want := range []string{"msg=request", "id=log-me", "path=/v1/healthz", "status=200", "method=GET"} {
		if !strings.Contains(out, want) {
			t.Errorf("access log missing %q:\n%s", want, out)
		}
	}
}

// TestMetricsExposition is the exposition-format golden test for
// GET /v1/metrics: after a deterministic request sequence, the engine
// counters, HTTP histogram series and sweep gauges must appear with exact
// values (latency sums excepted).
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t)
	// 1 miss + 1 hit + 1 repeat miss on another clip.
	for _, path := range []string{"/v1/clips/2", "/v1/clips/2", "/v1/clips/3"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, line := range []string{
		"# TYPE mediacache_cache_hits_total counter",
		"mediacache_cache_hits_total 1",
		"mediacache_cache_misses_total 2",
		"mediacache_cache_evictions_total 0",
		"# TYPE mediacache_http_request_seconds histogram",
		`mediacache_http_request_seconds_count{route="GET /v1/clips/{id}"} 3`,
		"# TYPE mediacache_http_in_flight gauge",
		"mediacache_http_requests_total 4",
		"# TYPE mediacache_sweep_queue_depth gauge",
		"mediacache_sweep_queue_depth 0",
		"# TYPE mediacache_cache_capacity_bytes gauge",
		"# TYPE mediacache_cache_eviction_batch_size histogram",
	} {
		if !strings.Contains(text, line) {
			t.Errorf("exposition missing %q", line)
		}
	}
	// bytes_fetched must equal the two missed clip sizes summed.
	var st api.Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	want := fmt.Sprintf("mediacache_cache_bytes_fetched_total %d", st.BytesFetched)
	if !strings.Contains(text, want) {
		t.Errorf("exposition missing %q", want)
	}
}

// TestHealthz checks liveness and the invariant payload.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	var h api.Health
	if resp := getJSON(t, ts.URL+"/v1/healthz", &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q", h.Status)
	}
	if h.CapacityBytes <= 0 || h.UsedBytes < 0 || h.UsedBytes > h.CapacityBytes {
		t.Errorf("invariant payload = %+v", h)
	}
}

// TestVersion checks the build/runtime identity endpoint.
func TestVersion(t *testing.T) {
	_, ts := newTestServer(t)
	var v api.BuildVersion
	if resp := getJSON(t, ts.URL+"/v1/version", &v); resp.StatusCode != http.StatusOK {
		t.Fatalf("version status = %d", resp.StatusCode)
	}
	if v.API != "v1" {
		t.Errorf("api = %q", v.API)
	}
	if !strings.HasPrefix(v.GoVersion, "go") {
		t.Errorf("goVersion = %q", v.GoVersion)
	}
	if v.Policy != "DYNSimple(K=2)" || v.PolicySpec != "dynsimple:2" {
		t.Errorf("policy identity = %q / %q", v.Policy, v.PolicySpec)
	}
}

// TestResidentPagination drives ?limit/?offset and both formats.
func TestResidentPagination(t *testing.T) {
	_, ts := newTestServer(t)
	for i := 1; i <= 5; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/v1/clips/%d", ts.URL, i))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	var all api.Resident
	getJSON(t, ts.URL+"/v1/resident", &all)
	if all.Total != 5 || len(all.Clips) != 5 {
		t.Fatalf("unpaginated listing = %+v", all)
	}
	if all.Clips[0].SizeBytes <= 0 || all.Clips[0].Kind == "" {
		t.Fatalf("per-clip detail missing: %+v", all.Clips[0])
	}

	var page api.Resident
	getJSON(t, ts.URL+"/v1/resident?limit=2&offset=1", &page)
	if page.Total != 5 || len(page.Clips) != 2 || page.Offset != 1 || page.Limit != 2 {
		t.Fatalf("page = %+v", page)
	}
	if page.Clips[0].ID != all.Clips[1].ID {
		t.Errorf("page start = clip %d, want %d", page.Clips[0].ID, all.Clips[1].ID)
	}

	// Offset past the end: empty page, not an error.
	var empty api.Resident
	getJSON(t, ts.URL+"/v1/resident?offset=99", &empty)
	if len(empty.Clips) != 0 || empty.Total != 5 {
		t.Fatalf("past-the-end page = %+v", empty)
	}

	// Bare-ID shape for existing clients, still paginated.
	var ids api.ResidentIDs
	getJSON(t, ts.URL+"/v1/resident?format=ids&limit=3", &ids)
	if len(ids.Clips) != 3 || ids.UsedBytes <= 0 {
		t.Fatalf("ids format = %+v", ids)
	}

	// Bad query parameters: JSON 400s.
	for _, q := range []string{"?limit=-1", "?offset=x", "?format=xml"} {
		if resp := getJSON(t, ts.URL+"/v1/resident"+q, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestPprofGating checks the profiles mount only with the flag.
func TestPprofGating(t *testing.T) {
	_, off := newTestServer(t)
	if resp := getJSON(t, off.URL+"/debug/pprof/", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without flag: status = %d, want 404", resp.StatusCode)
	}
	cfg := testConfig()
	cfg.pprof = true
	_, on := newTestServerConfig(t, cfg)
	resp, err := http.Get(on.URL + "/debug/pprof/heap?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof heap status = %d, want 200", resp.StatusCode)
	}
}

// TestTraceObserverLogs checks -trace wires the slog tracing observer.
func TestTraceObserverLogs(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig()
	cfg.trace = true
	cfg.logger = slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	_, ts := newTestServerConfig(t, cfg)
	resp, err := http.Get(ts.URL + "/v1/clips/2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	out := buf.String()
	if !strings.Contains(out, "cache event") || !strings.Contains(out, "type=miss") {
		t.Errorf("trace log missing cache events:\n%s", out)
	}
}

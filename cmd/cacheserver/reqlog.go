package main

// reqlog.go implements -reqlog: an NDJSON request log, one
// api.RequestLogEntry per serviced cache reference, carrying the
// requesting client (the X-Client-ID header), a global arrival tick, the
// wall-clock arrival time, the byte range, the outcome and both latencies
// (measured service time and modeled startup latency). The log is the
// measured half of the measure→model→replay loop: cmd/traceql sessionizes
// it, aggregates it and distills it back into a replayable workload spec.

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mediacache/internal/api"
	"mediacache/internal/media"
)

// reqLogger serializes request-log entries to one NDJSON stream. Tick is a
// process-global arrival sequence number; WallMicros and Tick are stamped
// at log time under the same mutex that orders the writes, so ticks in the
// file are strictly increasing.
type reqLogger struct {
	mu     sync.Mutex
	enc    *json.Encoder
	tick   atomic.Int64
	policy string
}

func newReqLogger(w io.Writer, policy string) *reqLogger {
	return &reqLogger{enc: json.NewEncoder(w), policy: policy}
}

// log writes one entry, stamping tick, wall time and policy. Encoding
// errors are swallowed: the request was already serviced, and a torn log
// line must not fail it retroactively.
func (l *reqLogger) log(e api.RequestLogEntry) {
	if l == nil {
		return
	}
	e.Tick = l.tick.Add(1)
	e.WallMicros = time.Now().UnixMicro()
	e.Policy = l.policy
	l.mu.Lock()
	defer l.mu.Unlock()
	_ = l.enc.Encode(e)
}

// logClip records one serviced clip reference. rng is nil for whole-clip
// requests; start is when the handler began servicing, so LatencyMicros is
// the measured service time (the modeled startup latency travels
// separately in ModelLatencySeconds).
func (s *server) logClip(r *http.Request, clip media.Clip, rng *byteRange,
	outcome string, hit bool, status int, modelLatency float64, peer string, start time.Time) {
	if s.reqlog == nil {
		return
	}
	e := api.RequestLogEntry{
		Client:              r.Header.Get(api.ClientIDHeader),
		Clip:                clip.ID,
		SizeBytes:           int64(clip.Size),
		Outcome:             outcome,
		Hit:                 hit,
		Status:              status,
		LatencyMicros:       time.Since(start).Microseconds(),
		ModelLatencySeconds: modelLatency,
		Peer:                peer,
	}
	if rng != nil {
		e.StartBytes = int64(rng.start)
		e.LengthBytes = int64(rng.length)
	}
	s.reqlog.log(e)
}

package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"mediacache/internal/api"
	"mediacache/internal/media"
)

// testSegConfig is the segmented counterpart of testConfig: 256 MB segments,
// a two-segment pinned prefix, and a cache large enough to hold the 1.8 GB
// clip the segmented tests stream.
func testSegConfig() config {
	cfg := testConfig()
	cfg.ratio = 0.5
	cfg.segmentSize = 256 * media.MB
	cfg.prefixSegments = 2
	return cfg
}

// getRange issues a GET with the given Range header (and optional extra
// headers) and returns the response with its body decoded into clip.
func getRange(t *testing.T, url, rangeHdr string, extra map[string]string, clip *api.Clip) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rangeHdr != "" {
		req.Header.Set("Range", rangeHdr)
	}
	for k, v := range extra {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if clip != nil && (resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusPartialContent) {
		decodeJSON(t, body, clip)
	}
	return resp
}

func decodeJSON(t *testing.T, body []byte, v interface{}) {
	t.Helper()
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("decode %s: %v", body, err)
	}
}

// TestRangePartialContent pins the 206 contract on the whole-clip engine: a
// sub-clip range answers 206 with Content-Range, Accept-Ranges and the
// range accounting in the body, on both the miss and the hit path.
func TestRangePartialContent(t *testing.T) {
	_, ts := newTestServer(t)
	url := ts.URL + "/v1/clips/2"

	var clip api.Clip
	resp := getRange(t, url, "bytes=0-999", nil, &clip)
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("cold ranged GET status = %d, want 206", resp.StatusCode)
	}
	size := clip.SizeBytes
	wantCR := "bytes 0-999/" + strconv.FormatInt(size, 10)
	if cr := resp.Header.Get("Content-Range"); cr != wantCR {
		t.Errorf("Content-Range = %q, want %q", cr, wantCR)
	}
	if ar := resp.Header.Get("Accept-Ranges"); ar != "bytes" {
		t.Errorf("Accept-Ranges = %q, want bytes", ar)
	}
	if clip.Range == nil {
		t.Fatal("206 body carries no range accounting")
	}
	if clip.Range.StartBytes != 0 || clip.Range.LengthBytes != 1000 {
		t.Errorf("range = [%d,+%d), want [0,+1000)", clip.Range.StartBytes, clip.Range.LengthBytes)
	}
	if clip.Hit || clip.Range.BytesFetched != 1000 {
		t.Errorf("cold range = %+v, want 1000 fetched bytes", clip.Range)
	}

	// The whole clip is now resident: the same range is a pure hit but
	// still answers 206 because it does not span the clip.
	clip = api.Clip{}
	resp = getRange(t, url, "bytes=0-999", nil, &clip)
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("warm ranged GET status = %d, want 206", resp.StatusCode)
	}
	if !clip.Hit || clip.Range.BytesHit != 1000 {
		t.Errorf("warm range = %+v, want 1000 hit bytes", clip.Range)
	}
	if clip.LatencySeconds != 0 {
		t.Errorf("warm range latency = %v, want 0", clip.LatencySeconds)
	}

	// A resident whole-clip range takes the 200 fast path, like an
	// unranged GET.
	resp = getRange(t, url, "bytes=0-", nil, &clip)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("resident bytes=0- status = %d, want 200", resp.StatusCode)
	}
	if cr := resp.Header.Get("Content-Range"); cr != "" {
		t.Errorf("200 fast path carries Content-Range %q", cr)
	}
}

// TestRangeSuffixAndClamp covers the suffix ("-n") and clamped ("a-huge")
// forms.
func TestRangeSuffixAndClamp(t *testing.T) {
	_, ts := newTestServer(t)
	url := ts.URL + "/v1/clips/2"
	var clip api.Clip
	getJSON(t, url, &clip) // make the clip resident
	size := clip.SizeBytes

	resp := getRange(t, url, "bytes=-500", nil, &clip)
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("suffix range status = %d, want 206", resp.StatusCode)
	}
	if clip.Range.StartBytes != size-500 || clip.Range.LengthBytes != 500 {
		t.Errorf("suffix range = [%d,+%d), want the final 500 bytes of %d",
			clip.Range.StartBytes, clip.Range.LengthBytes, size)
	}

	resp = getRange(t, url, "bytes=100-999999999999", nil, &clip)
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("clamped range status = %d, want 206", resp.StatusCode)
	}
	if clip.Range.StartBytes != 100 || clip.Range.LengthBytes != size-100 {
		t.Errorf("clamped range = [%d,+%d), want [100,+%d)",
			clip.Range.StartBytes, clip.Range.LengthBytes, size-100)
	}
	wantCR := "bytes 100-" + strconv.FormatInt(size-1, 10) + "/" + strconv.FormatInt(size, 10)
	if cr := resp.Header.Get("Content-Range"); cr != wantCR {
		t.Errorf("Content-Range = %q, want %q", cr, wantCR)
	}
}

// TestRangeUnsatisfiable pins the 416 contract: start at or past the end,
// the empty suffix "-0", and multi-range requests all answer 416 with the
// unsatisfied-range form of Content-Range and no cache traffic.
func TestRangeUnsatisfiable(t *testing.T) {
	srv, ts := newTestServer(t)
	url := ts.URL + "/v1/clips/2"
	var clip api.Clip
	getJSON(t, url, &clip)
	size := clip.SizeBytes
	before := srv.pool.Stats().Requests

	for _, hdr := range []string{
		"bytes=" + strconv.FormatInt(size, 10) + "-",
		"bytes=999999999999-",
		"bytes=-0",
		"bytes=0-99,200-299",
	} {
		resp := getRange(t, url, hdr, nil, nil)
		if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
			t.Errorf("Range %q status = %d, want 416", hdr, resp.StatusCode)
		}
		wantCR := "bytes */" + strconv.FormatInt(size, 10)
		if cr := resp.Header.Get("Content-Range"); cr != wantCR {
			t.Errorf("Range %q Content-Range = %q, want %q", hdr, cr, wantCR)
		}
	}
	if after := srv.pool.Stats().Requests; after != before {
		t.Errorf("416 responses reached the cache: %d extra requests", after-before)
	}
}

// TestRangeIgnored covers the headers RFC 9110 lets a server ignore: other
// units, malformed specs, and any Range alongside If-Range (the validator is
// unverifiable here, so the full clip is served with 200).
func TestRangeIgnored(t *testing.T) {
	_, ts := newTestServer(t)
	url := ts.URL + "/v1/clips/2"
	for _, tc := range []struct {
		rangeHdr string
		extra    map[string]string
	}{
		{rangeHdr: "items=0-5"},
		{rangeHdr: "bytes=abc-def"},
		{rangeHdr: "bytes=5"},
		{rangeHdr: "bytes=9-5"},
		{rangeHdr: "bytes=0-99", extra: map[string]string{"If-Range": `"v1"`}},
	} {
		var clip api.Clip
		resp := getRange(t, url, tc.rangeHdr, tc.extra, &clip)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("Range %q (extra %v) status = %d, want 200", tc.rangeHdr, tc.extra, resp.StatusCode)
		}
		if clip.Range != nil {
			t.Errorf("Range %q: ignored header produced range accounting %+v", tc.rangeHdr, clip.Range)
		}
		if cr := resp.Header.Get("Content-Range"); cr != "" {
			t.Errorf("Range %q: ignored header produced Content-Range %q", tc.rangeHdr, cr)
		}
	}
}

// TestHeadClip pins the HEAD contract: size and residency headers without
// touching the cache.
func TestHeadClip(t *testing.T) {
	srv, ts := newTestServer(t)
	url := ts.URL + "/v1/clips/2"

	resp, err := http.Head(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD status = %d", resp.StatusCode)
	}
	if ar := resp.Header.Get("Accept-Ranges"); ar != "bytes" {
		t.Errorf("HEAD Accept-Ranges = %q, want bytes", ar)
	}
	if rb := resp.Header.Get("X-Cache-Resident-Bytes"); rb != "0" {
		t.Errorf("cold HEAD X-Cache-Resident-Bytes = %q, want 0", rb)
	}
	var clip api.Clip
	getJSON(t, url, &clip)
	size := strconv.FormatInt(clip.SizeBytes, 10)

	resp, err = http.Head(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cl := resp.Header.Get("Content-Length"); cl != size {
		t.Errorf("HEAD Content-Length = %q, want %q", cl, size)
	}
	if rb := resp.Header.Get("X-Cache-Resident-Bytes"); rb != size {
		t.Errorf("warm HEAD X-Cache-Resident-Bytes = %q, want %q", rb, size)
	}
	if got := srv.pool.Stats().Requests; got != 1 {
		t.Errorf("HEAD reached the cache: %d requests, want 1 (the GET)", got)
	}

	resp, err = http.Head(ts.URL + "/v1/clips/99999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("HEAD unknown clip status = %d, want 404", resp.StatusCode)
	}
}

// TestResidentExtentsFormat checks GET /v1/resident?format=extents on the
// whole-clip engine: one extent spanning each resident clip.
func TestResidentExtentsFormat(t *testing.T) {
	_, ts := newTestServer(t)
	var clip api.Clip
	getJSON(t, ts.URL+"/v1/clips/2", &clip)

	var ext api.ResidentExtents
	if resp := getJSON(t, ts.URL+"/v1/resident?format=extents", &ext); resp.StatusCode != http.StatusOK {
		t.Fatalf("format=extents status = %d", resp.StatusCode)
	}
	if ext.Total != 1 || len(ext.Clips) != 1 {
		t.Fatalf("extents = %+v, want 1 clip", ext)
	}
	got := ext.Clips[0]
	if got.ID != 2 || got.BytesResident != clip.SizeBytes {
		t.Errorf("clip extents = %+v, want clip 2 fully resident", got)
	}
	if len(got.Extents) != 1 || got.Extents[0].OffsetBytes != 0 || got.Extents[0].LengthBytes != clip.SizeBytes {
		t.Errorf("extents of clip 2 = %+v, want one extent spanning the clip", got.Extents)
	}
	if ext.UsedBytes != clip.SizeBytes {
		t.Errorf("usedBytes = %d, want %d", ext.UsedBytes, clip.SizeBytes)
	}
	if ext.SegmentSizeBytes != 0 {
		t.Errorf("unsegmented extents reports segmentSizeBytes = %d", ext.SegmentSizeBytes)
	}
}

// TestSegmentedPrefixRangeServing drives the acceptance scenario end to
// end on a segmented server: warm the pinned prefix of a cold clip, then
// stream it from byte 0 — the first bytes come from cache (zero startup
// latency, resident bytes visible in X-Cache-Resident-Bytes) while the
// tail fetches per segment.
func TestSegmentedPrefixRangeServing(t *testing.T) {
	srv, ts := newTestServerConfig(t, testSegConfig())
	url := ts.URL + "/v1/clips/3"
	segSize := int64(256 * media.MB)
	prefixBytes := 2 * segSize

	// Warm exactly the two pinned prefix segments.
	var clip api.Clip
	resp := getRange(t, url, "bytes=0-"+strconv.FormatInt(prefixBytes-1, 10), nil, &clip)
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("prefix warm status = %d, want 206", resp.StatusCode)
	}
	if clip.Range.BytesFetched != prefixBytes {
		t.Fatalf("prefix warm fetched %d bytes, want %d", clip.Range.BytesFetched, prefixBytes)
	}
	if rb := resp.Header.Get("X-Cache-Resident-Bytes"); rb != strconv.FormatInt(prefixBytes, 10) {
		t.Fatalf("X-Cache-Resident-Bytes after prefix warm = %q, want %d", rb, prefixBytes)
	}

	// Stream the whole clip from byte 0: the prefix is served from cache,
	// so the modeled startup latency is zero even though the tail misses.
	clip = api.Clip{}
	resp = getRange(t, url, "bytes=0-", nil, &clip)
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("prefix-resident stream status = %d, want 206 (tail missed)", resp.StatusCode)
	}
	if clip.Hit {
		t.Error("stream with a missing tail reported a full hit")
	}
	if clip.LatencySeconds != 0 {
		t.Errorf("prefix-resident stream latency = %v, want 0", clip.LatencySeconds)
	}
	if clip.Range.BytesHit != prefixBytes {
		t.Errorf("stream hit %d bytes from cache, want the %d-byte prefix", clip.Range.BytesHit, prefixBytes)
	}
	if clip.Range.BytesHit+clip.Range.BytesFetched+clip.Range.BytesFailed != clip.SizeBytes {
		t.Errorf("stream bytes %d+%d+%d do not cover the clip (%d)",
			clip.Range.BytesHit, clip.Range.BytesFetched, clip.Range.BytesFailed, clip.SizeBytes)
	}
	if clip.Segments == nil {
		t.Fatal("segmented response carries no segment info")
	}
	if clip.Segments.SizeBytes != segSize || clip.PrefixSegments != 2 {
		t.Errorf("segment info = %+v prefix %d, want size %d prefix 2",
			clip.Segments, clip.PrefixSegments, segSize)
	}
	if clip.Segments.Resident != clip.Segments.Total {
		t.Errorf("after streaming, %d/%d segments resident", clip.Segments.Resident, clip.Segments.Total)
	}
	if clip.BytesResident != clip.SizeBytes {
		t.Errorf("bytesResident = %d, want %d", clip.BytesResident, clip.SizeBytes)
	}

	// Fully resident now: a whole-clip range takes the 200 fast path.
	resp = getRange(t, url, "bytes=0-", nil, &clip)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("fully resident stream status = %d, want 200", resp.StatusCode)
	}
	if !clip.Hit || clip.LatencySeconds != 0 {
		t.Errorf("fully resident stream = hit=%v latency=%v, want hit with zero latency", clip.Hit, clip.LatencySeconds)
	}

	st := srv.pool.Stats()
	if st.PartialHits == 0 {
		t.Error("prefix-resident stream recorded no partial hit")
	}
	if st.BytesHit+st.BytesFetched+st.BytesFailed != st.BytesReferenced {
		t.Errorf("segment byte identity broken: %d+%d+%d != %d",
			st.BytesHit, st.BytesFetched, st.BytesFailed, st.BytesReferenced)
	}
}

// TestSegmentedWireFields checks the segment fields of /v1/stats, /v1/shards
// and /v1/resident?format=extents appear on segmented servers — and that the
// raw JSON of an unsegmented server never mentions them (wire compat).
func TestSegmentedWireFields(t *testing.T) {
	_, segTS := newTestServerConfig(t, testSegConfig())
	var clip api.Clip
	getRange(t, segTS.URL+"/v1/clips/3", "bytes=0-0", nil, &clip)

	var st api.Stats
	getJSON(t, segTS.URL+"/v1/stats", &st)
	if st.SegmentSizeBytes != int64(256*media.MB) {
		t.Errorf("segmented stats segmentSizeBytes = %d", st.SegmentSizeBytes)
	}
	if st.PrefixSegments != 2 || st.ResidentSegments != 1 || st.SegmentsFetched != 1 {
		t.Errorf("segmented stats = %+v, want prefix 2, 1 resident, 1 fetched", st)
	}
	var shards api.Shards
	getJSON(t, segTS.URL+"/v1/shards", &shards)
	total := 0
	for _, sh := range shards.Shards {
		total += sh.ResidentSegments
	}
	if total != 1 {
		t.Errorf("shard residentSegments sum = %d, want 1", total)
	}
	var ext api.ResidentExtents
	getJSON(t, segTS.URL+"/v1/resident?format=extents", &ext)
	if ext.SegmentSizeBytes != int64(256*media.MB) {
		t.Errorf("extents segmentSizeBytes = %d", ext.SegmentSizeBytes)
	}
	if ext.UsedBytes != int64(256*media.MB) {
		t.Errorf("extents usedBytes = %d, want one segment", ext.UsedBytes)
	}

	// Unsegmented servers must not leak any segment field onto the wire.
	_, ts := newTestServer(t)
	getJSON(t, ts.URL+"/v1/clips/2", nil)
	for _, path := range []string{"/v1/clips/2", "/v1/stats", "/v1/shards"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		for _, field := range []string{"segment", "Segment", "bytesResident", "prefix"} {
			if strings.Contains(string(body), field) {
				t.Errorf("unsegmented %s leaks %q: %s", path, field, body)
			}
		}
	}
}

// TestSegmentedMetricsGauges checks the segment gauges appear in the
// Prometheus exposition only on segmented servers.
func TestSegmentedMetricsGauges(t *testing.T) {
	_, segTS := newTestServerConfig(t, testSegConfig())
	getRange(t, segTS.URL+"/v1/clips/3", "bytes=0-0", nil, nil)
	resp, err := http.Get(segTS.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if !strings.Contains(text, "mediacache_cache_resident_segments 1") {
		t.Errorf("segmented metrics lack resident_segments gauge:\n%s", text)
	}
	if !strings.Contains(text, "mediacache_cache_segment_size_bytes") {
		t.Errorf("segmented metrics lack segment_size_bytes gauge")
	}

	_, ts := newTestServer(t)
	resp, err = http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, gauge := range []string{"mediacache_cache_resident_segments", "mediacache_cache_segment_size_bytes"} {
		if strings.Contains(string(body), gauge) {
			t.Errorf("unsegmented metrics expose %s", gauge)
		}
	}
}

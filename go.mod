module mediacache

go 1.22

module mediacache

go 1.23

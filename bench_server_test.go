package mediacache_test

// bench_server_test.go measures the sharded front-end (internal/shard)
// against the single-global-lock layout the cacheserver used before
// sharding. The workload models the server's serving path: concurrent
// clients (16 goroutines) requesting Zipf-distributed clips, where every
// miss pays a simulated remote-fetch latency. The global baseline holds
// one mutex across the whole request — fetch included — exactly as the
// pre-sharding server did; the sharded pool routes by clip ID, runs the
// fetch outside any shard lock, and coalesces concurrent misses for the
// same clip, so misses on different clips overlap their link time.
//
// Compare the layouts from one archived `make bench` run with
// `make benchcmp`: it pairs ServerThroughput/global with each
// ServerThroughput/shards=N sibling and reports the speedup. (The
// variant is spelled shards=N, not sharded-N: a trailing -N is
// indistinguishable from Go's -GOMAXPROCS benchmark-name suffix.)

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mediacache/internal/core"
	"mediacache/internal/media"
	"mediacache/internal/shard"
	"mediacache/internal/sim"
	"mediacache/internal/vtime"
	"mediacache/internal/workload"
	"mediacache/internal/zipf"
)

// serverFetchLatency is the simulated per-miss link time. 100µs is
// conservative for a wireless link (real fetches are milliseconds); a
// larger value only widens the gap between the layouts.
const serverFetchLatency = 100 * time.Microsecond

// serverBenchClients is the simulated client concurrency:
// SetParallelism(16) gives 16×GOMAXPROCS driver goroutines.
const serverBenchClients = 16

// BenchmarkServerThroughput compares aggregate request throughput of the
// single-global-lock cache against hash-partitioned pools at 1, 2, 4 and 8
// shards under concurrent Zipf traffic with a 100µs simulated fetch. The
// 1-shard pool serializes through the same single engine as the global
// baseline, so its speedup isolates the lock-reduced hit path; higher
// shard counts add partitioning on top. The batch=16 variant drives the
// same traffic through RequestBatch.
func BenchmarkServerThroughput(b *testing.B) {
	repo := media.PaperRepository()
	dist := zipf.MustNew(repo.N(), zipf.DefaultMean)
	gen := workload.MustNewGenerator(dist, sim.DefaultSeed)
	trace := make([]media.ClipID, 1<<16)
	for i := range trace {
		trace[i] = gen.Next()
	}
	capacity := repo.CacheSizeForRatio(0.125)
	fetch := func(media.Clip, vtime.Time) error {
		time.Sleep(serverFetchLatency)
		return nil
	}

	drive := func(b *testing.B, request func(media.ClipID) (core.Outcome, error)) {
		// Warm into the steady-state mix of hits and misses.
		for i := 0; i < 2000; i++ {
			if _, err := request(trace[i%len(trace)]); err != nil {
				b.Fatal(err)
			}
		}
		var idx atomic.Uint64
		b.SetParallelism(serverBenchClients)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				id := trace[idx.Add(1)%uint64(len(trace))]
				if _, err := request(id); err != nil {
					b.Error(err)
					return
				}
			}
		})
	}

	b.Run("global", func(b *testing.B) {
		cache, err := sim.NewCache("greedydual", repo, capacity, nil, sim.DefaultSeed,
			core.WithFetch(fetch))
		if err != nil {
			b.Fatal(err)
		}
		var mu sync.Mutex
		drive(b, func(id media.ClipID) (core.Outcome, error) {
			mu.Lock()
			defer mu.Unlock()
			return cache.Request(id)
		})
	})
	// shards=1 is the lock-reduced read path against the same serialized
	// engine the global baseline drives: hits resolve off the published
	// residency view without the shard lock, so the speedup isolates the
	// fast path rather than partitioning.
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			pool, err := shard.New(shard.Config{
				Policy:   "greedydual",
				Repo:     repo,
				Capacity: capacity,
				Seed:     sim.DefaultSeed,
				Shards:   n,
				Fetch:    fetch,
			})
			if err != nil {
				b.Fatal(err)
			}
			drive(b, pool.Request)
		})
	}

	// batch=K drives the batched request API on a 4-shard pool, K items per
	// submission: shard-grouped servicing with at most two engine-lock
	// acquisitions per shard group.
	b.Run("batch=16", func(b *testing.B) {
		pool, err := shard.New(shard.Config{
			Policy:   "greedydual",
			Repo:     repo,
			Capacity: capacity,
			Seed:     sim.DefaultSeed,
			Shards:   4,
			Fetch:    fetch,
		})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			if _, err := pool.Request(trace[i%len(trace)]); err != nil {
				b.Fatal(err)
			}
		}
		const batchLen = 16
		var idx atomic.Uint64
		b.SetParallelism(serverBenchClients)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			items := make([]shard.BatchItem, batchLen)
			for pb.Next() {
				base := idx.Add(batchLen)
				for k := range items {
					items[k] = shard.BatchItem{ID: trace[(base+uint64(k))%uint64(len(trace))]}
				}
				for _, r := range pool.RequestBatch(items) {
					if r.Err != nil {
						b.Error(r.Err)
						return
					}
				}
			}
		})
		// Each iteration services batchLen requests; report per-request cost
		// via the custom metric so rows stay comparable.
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batchLen), "ns/req")
	})

	// Segmented pools at the same shard counts: partial-content requests
	// from the prefix-biased range workload, misses fetched per missing
	// 256 MB segment through the per-(clip, segment) flight group, with a
	// two-segment pinned prefix. The variant is spelled segments=N (N =
	// shard count) so benchcmp pairs it against ServerThroughput/global
	// like the whole-clip siblings.
	rgen, err := workload.NewRangeGenerator(repo, dist, sim.DefaultSeed, workload.DefaultRangeConfig())
	if err != nil {
		b.Fatal(err)
	}
	rtrace := rgen.Generate(nil, 1<<16)
	segFetch := func(media.Clip, int32, vtime.Time) error {
		time.Sleep(serverFetchLatency)
		return nil
	}
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("segments=%d", n), func(b *testing.B) {
			pool, err := shard.New(shard.Config{
				Policy:         "greedydual",
				Repo:           repo,
				Capacity:       capacity,
				Seed:           sim.DefaultSeed,
				Shards:         n,
				SegmentSize:    256 * media.MB,
				PrefixSegments: 2,
				SegmentFetch:   segFetch,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 2000; i++ {
				req := rtrace[i%len(rtrace)]
				if _, err := pool.RequestRange(req.Clip, req.Start, req.Length); err != nil {
					b.Fatal(err)
				}
			}
			var idx atomic.Uint64
			b.SetParallelism(serverBenchClients)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					req := rtrace[idx.Add(1)%uint64(len(rtrace))]
					if _, err := pool.RequestRange(req.Clip, req.Start, req.Length); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
